// FleetExperiment: the Section 3 measurement-study harness.
//
// The paper instruments 20 hosts in each of five services and collects
// 2-second Millisampler traces nine times a day (Figure 2/4) and every ten
// minutes for 18 hours (Figure 3). Here each (host, snapshot) pair is an
// independent rack simulation: a production-like ToR (shallower per-queue
// cap, 6.7%-of-capacity ECN threshold, shared buffer with rack-level
// contention) receiving that service's synthetic burst traffic, with a
// Millisampler on the measured host and a watermark monitor on its ToR
// queue. The burst detector then reduces each trace to per-burst records.
#ifndef INCAST_CORE_FLEET_EXPERIMENT_H_
#define INCAST_CORE_FLEET_EXPERIMENT_H_

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "analysis/burst_detector.h"
#include "sim/auditor.h"
#include "sim/event_category.h"
#include "sim/sweep.h"
#include "tcp/tcp_config.h"
#include "workload/rack_contention.h"
#include "workload/service_profile.h"

namespace incast::obs {
class Hub;
}  // namespace incast::obs

namespace incast::core {

struct HostTraceResult;

struct FleetConfig {
  workload::ServiceProfile profile;
  int num_hosts{6};
  int num_snapshots{3};
  sim::Time trace_duration{sim::Time::seconds(1)};

  // Production-like ToR: ECN marks at 6.7% of the per-queue capacity (the
  // paper's production threshold); the effective capacity at runtime is
  // lower whenever the shared pool is contended.
  std::int64_t queue_capacity_packets{2000};
  double ecn_threshold_fraction{0.067};
  // Shared pool sized at ~one queue's worth of MTU frames: under rack
  // contention the Dynamic Threshold squeezes the measured queue well
  // below its static cap, which is where the rare catastrophic losses of
  // Figure 4c come from.
  std::int64_t shared_pool_bytes{2000 * 1500};

  // How the "simultaneous burst events to other hosts on the same rack"
  // (Section 3.4) are modelled:
  //  * kNone     — the measured host has the rack to itself;
  //  * kModeled  — a Markov on/off process pins a fraction of the shared
  //    pool (cheap; the default);
  //  * kNeighbor — a second receiver on the same ToR runs the same service
  //    for real, its bursts competing for the shared pool packet by packet.
  enum class ContentionMode { kNone, kModeled, kNeighbor };
  ContentionMode contention_mode{ContentionMode::kModeled};
  workload::RackContention::Config contention{};

  tcp::TcpConfig tcp{};
  sim::Bandwidth nic_rate{sim::Bandwidth::gigabits_per_second(10)};

  // "video" switches operating regime every this many snapshots.
  int regime_block_snapshots{3};

  std::uint64_t base_seed{42};

  // Worker threads for run_all(): each (host, snapshot) cell is an
  // independent simulation, so the grid parallelizes freely. 1 = run
  // inline (no pool); <= 0 = hardware_concurrency. Results are
  // byte-identical for every value — seeds derive from (base_seed, cell
  // index), never from scheduling.
  int jobs{1};

  analysis::BurstDetectorConfig detector{};

  // Borrowed observability hub. A fleet sweep runs many independent
  // simulations, so the hub is attached to exactly one deterministic cell —
  // (host 0, snapshot 0) — keeping trace and metrics output identical for
  // every --jobs value. nullptr = unobserved.
  obs::Hub* hub{nullptr};
  // Enable the event-loop wall-time self-profiler in every cell's
  // simulator. Costs two steady_clock reads per event; results (the
  // category histogram) land in HostTraceResult::wall_ns_by_category.
  bool profile_event_loop{false};

  // Run-hardening (see sim/auditor.h): every cell runs under its own
  // auditor with these budgets/bounds; audit.strict is overridden from
  // audit_mode. kRelaxed (the default) never perturbs results.
  sim::AuditMode audit_mode{sim::AuditMode::kRelaxed};
  sim::Auditor::Config audit{};

  // Fault-isolation policy for run_all() (sweep.seed_of is filled in by
  // the experiment from the cell-seed derivation when unset). The default
  // — fail_fast — reproduces the historical abort-on-first-error behavior.
  sim::SweepRunner::Policy sweep{};

  // Checkpoint/resume hooks (core::TaskJournal wires these from the CLI).
  // `resume` is consulted before a cell runs: return true and fill the
  // result to skip the simulation entirely. `on_result` fires after every
  // freshly-run cell (from the worker thread that ran it) with the cell's
  // derived seed.
  std::function<bool(std::size_t index, HostTraceResult& out)> resume{};
  std::function<void(std::size_t index, std::uint64_t seed, const HostTraceResult&)>
      on_result{};

  // Test hook: the cell at this sweep index (snapshot * num_hosts + host)
  // throws instead of running, exercising the sweep layer's fault
  // isolation. -1 (the default) disables.
  int fail_cell_for_test{-1};
};

struct HostTraceResult {
  int host{0};
  int snapshot{0};
  bool alt_regime{false};
  double avg_utilization{0.0};
  analysis::TraceBurstSummary summary;
  std::int64_t queue_drops{0};
  std::int64_t generated_bursts{0};  // ground truth from the generator
  // Simulator events this trace dispatched — the determinism fingerprint
  // (identical for a given (host, snapshot, seed) at any --jobs value) —
  // plus the per-category breakdown and, when profile_event_loop is set,
  // wall time spent in callbacks by category (wall time is timing
  // telemetry: never part of the deterministic results).
  std::uint64_t events_processed{0};
  sim::EventCategoryCounts events_by_category{};
  std::array<double, sim::kNumEventCategories> wall_ns_by_category{};
  // Event-kernel footprint (sim/event_queue.h).
  std::uint64_t peak_events_pending{0};
  std::uint64_t slab_high_water{0};
  // Auditor invariant violations observed during this trace (0 when the
  // audit layer is off or compiled out).
  std::uint64_t audit_violations{0};

  // Per-1ms ToR queue watermarks (always retained; Figure 4a coarsens them
  // to production-style windows).
  std::vector<std::int64_t> queue_watermarks;
  // Raw Millisampler bins, retained only when FleetExperiment::keep_bins()
  // is set (Figure 1 needs them; the CDF figures do not).
  std::vector<telemetry::Millisampler::Bin> bins;
};

class FleetExperiment {
 public:
  explicit FleetExperiment(const FleetConfig& config) : config_{config} {}

  // Retain per-bin series in results (memory-heavy; off by default).
  void set_keep_bins(bool keep) noexcept { keep_bins_ = keep; }

  // Runs one (host, snapshot) trace in an isolated simulation.
  [[nodiscard]] HostTraceResult run_host_trace(int host, int snapshot) const;

  // Runs every (host, snapshot) pair across config().jobs worker threads
  // (sim::SweepRunner). Results are ordered snapshot-major — index
  // snapshot * num_hosts + host — regardless of completion order.
  [[nodiscard]] std::vector<HostTraceResult> run_all() const;

  // Wall-time/events stats of the most recent run_all() sweep.
  [[nodiscard]] const sim::SweepRunner::RunStats& last_sweep() const noexcept {
    return last_sweep_;
  }

  [[nodiscard]] const FleetConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] std::uint64_t trace_seed(int host, int snapshot) const noexcept;

  FleetConfig config_;
  bool keep_bins_{false};
  // Timing telemetry from run_all(); mutable because timing a const sweep
  // does not change the experiment's observable results.
  mutable sim::SweepRunner::RunStats last_sweep_{};
};

}  // namespace incast::core

#endif  // INCAST_CORE_FLEET_EXPERIMENT_H_
