#include "core/task_journal.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <utility>
#include <vector>

#include "core/error.h"

namespace incast::core {

std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

namespace {

constexpr const char* kJournalMagic = "incast-task-journal";
constexpr std::int64_t kJournalVersion = 1;

// Canonical-string helpers: "key=value|" pieces in a fixed order. Doubles
// use %.17g so the string (and hence the fingerprint) round-trips the exact
// value the run will use.
void put(std::string& out, const char* key, std::int64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s=%" PRId64 "|", key, value);
  out += buf;
}

void put_u64(std::string& out, const char* key, std::uint64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s=%" PRIu64 "|", key, value);
  out += buf;
}

void put(std::string& out, const char* key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s=%.17g|", key, value);
  out += buf;
}

void put(std::string& out, const char* key, const std::string& value) {
  out += key;
  out += '=';
  out += value;
  out += '|';
}

void put_time(std::string& out, const char* key, sim::Time t) { put(out, key, t.ns()); }

void put_profile(std::string& out, const workload::ServiceProfile& p) {
  put(out, "service", p.name);
  put(out, "bursts_per_second", p.bursts_per_second);
  put(out, "body_median_flows", p.body_median_flows);
  put(out, "body_sigma", p.body_sigma);
  put(out, "min_flows", static_cast<std::int64_t>(p.min_flows));
  put(out, "max_flows", static_cast<std::int64_t>(p.max_flows));
  put(out, "low_mode_probability", p.low_mode_probability);
  put(out, "low_mode_min", static_cast<std::int64_t>(p.low_mode_min));
  put(out, "low_mode_max", static_cast<std::int64_t>(p.low_mode_max));
  put(out, "alt_median_flows", p.alt_median_flows);
  put(out, "duration_geometric_p", p.duration_geometric_p);
  put(out, "max_duration_ms", static_cast<std::int64_t>(p.max_duration_ms));
  put(out, "util_lo", p.util_lo);
  put(out, "util_hi", p.util_hi);
  put(out, "host_sigma", p.host_sigma);
}

void put_tcp(std::string& out, const tcp::TcpConfig& tcp) {
  put(out, "cc", static_cast<std::int64_t>(tcp.cc));
  put(out, "mss_bytes", tcp.mss_bytes);
  put_time(out, "min_rto", tcp.rtt.min_rto);
  put(out, "cwnd_cap_bytes", tcp.cwnd_cap_bytes.value_or(0));
  put(out, "tlp", static_cast<std::int64_t>(tcp.tail_loss_probe ? 1 : 0));
  put(out, "int_telemetry", static_cast<std::int64_t>(tcp.int_telemetry ? 1 : 0));
}

void put_fault(std::string& out, const char* prefix, const fault::LinkFaultConfig& f) {
  std::string key{prefix};
  const auto add_d = [&](const char* name, double v) {
    put(out, (key + name).c_str(), v);
  };
  add_d("drop_rate", f.drop_rate);
  add_d("corrupt_rate", f.corrupt_rate);
  add_d("duplicate_rate", f.duplicate_rate);
  add_d("reorder_rate", f.reorder_rate);
  put(out, (key + "reorder_max_delay").c_str(), f.reorder_max_delay.ns());
  add_d("ge_good_to_bad", f.ge_good_to_bad);
  add_d("ge_bad_to_good", f.ge_bad_to_good);
  add_d("ge_drop_bad", f.ge_drop_bad);
  add_d("ge_drop_good", f.ge_drop_good);
}

}  // namespace

std::string canonical_config(const FleetConfig& config) {
  std::string out{"fleet|"};
  put_profile(out, config.profile);
  put(out, "num_hosts", static_cast<std::int64_t>(config.num_hosts));
  put(out, "num_snapshots", static_cast<std::int64_t>(config.num_snapshots));
  put_time(out, "trace_duration", config.trace_duration);
  put(out, "queue_capacity_packets", config.queue_capacity_packets);
  put(out, "ecn_threshold_fraction", config.ecn_threshold_fraction);
  put(out, "shared_pool_bytes", config.shared_pool_bytes);
  put(out, "contention_mode", static_cast<std::int64_t>(config.contention_mode));
  put_time(out, "contention_mean_on", config.contention.mean_on);
  put_time(out, "contention_mean_off", config.contention.mean_off);
  put(out, "contention_min_fraction", config.contention.min_fraction);
  put(out, "contention_max_fraction", config.contention.max_fraction);
  put_tcp(out, config.tcp);
  put(out, "nic_rate_bps", config.nic_rate.bps());
  put(out, "regime_block_snapshots", static_cast<std::int64_t>(config.regime_block_snapshots));
  put_u64(out, "base_seed", config.base_seed);
  put(out, "utilization_threshold", config.detector.utilization_threshold);
  put(out, "incast_flow_threshold",
      static_cast<std::int64_t>(config.detector.incast_flow_threshold));
  return out;
}

std::string canonical_config(const ResilienceConfig& config) {
  std::string out{"faults|"};
  const IncastExperimentConfig& base = config.base;
  put(out, "num_flows", static_cast<std::int64_t>(base.num_flows));
  put_time(out, "burst_duration", base.burst_duration);
  put(out, "num_bursts", static_cast<std::int64_t>(base.num_bursts));
  put(out, "discard_bursts", static_cast<std::int64_t>(base.discard_bursts));
  put_time(out, "inter_burst_gap", base.inter_burst_gap);
  put(out, "schedule", static_cast<std::int64_t>(base.schedule));
  put(out, "queue_capacity_packets", base.topology.switch_queue.capacity_packets);
  put(out, "ecn_threshold_packets", base.topology.switch_queue.ecn_threshold_packets);
  put_tcp(out, base.tcp);
  put_time(out, "max_sim_time", base.max_sim_time);
  put_u64(out, "seed", base.seed);
  put_fault(out, "template_", config.fault_template);
  out += "drop_rates=";
  for (const double rate : config.drop_rates) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g,", rate);
    out += buf;
  }
  out += "|flap_durations=";
  for (const sim::Time d : config.flap_durations) {
    out += std::to_string(d.ns());
    out += ',';
  }
  out += '|';
  put_time(out, "flap_at", config.flap_at);
  return out;
}

TaskJournal::~TaskJournal() {
  if (out_ != nullptr) std::fclose(out_);
}

void TaskJournal::open(const std::string& path, const JournalHeader& header) {
  if (out_ != nullptr) throw Error{ErrorCategory::kInternal, "journal: already open"};

  bool needs_header = true;
  bool truncated_tail = false;
  std::vector<std::string> kept_lines;
  {
    std::ifstream in{path};
    if (in) {
      // Existing journal: validate the header and load completed tasks.
      // Collect the lines first so "last line" is well-defined for the
      // truncation tolerance below.
      std::vector<std::string> lines;
      std::string line;
      while (std::getline(in, line)) lines.push_back(line);
      if (!lines.empty()) {
        Json head;
        try {
          head = Json::parse(lines.front());
        } catch (const std::exception& e) {
          throw Error{ErrorCategory::kIo,
                      "journal " + path + ": unreadable header: " + e.what()};
        }
        const Json* magic = head.find("journal");
        if (magic == nullptr || !magic->is_string() ||
            magic->as_string() != kJournalMagic) {
          throw Error{ErrorCategory::kIo,
                      "journal " + path + ": not an incast task journal"};
        }
        try {
          if (head.at("version").as_int() != kJournalVersion) {
            throw Error{ErrorCategory::kConfig,
                        "journal " + path + ": unsupported version " +
                            std::to_string(head.at("version").as_int())};
          }
          const std::string command = head.at("command").as_string();
          const std::uint64_t fingerprint =
              std::stoull(head.at("fingerprint").as_string());
          const auto tasks = static_cast<std::uint64_t>(head.at("tasks").as_int());
          if (command != header.command || fingerprint != header.fingerprint ||
              tasks != header.tasks) {
            char buf[256];
            std::snprintf(buf, sizeof(buf),
                          "journal %s was written by a different run (%s, %" PRIu64
                          " task(s), fingerprint %016" PRIx64 "; this run: %s, %" PRIu64
                          " task(s), fingerprint %016" PRIx64
                          ") — refusing to resume; delete the journal or rerun the "
                          "original configuration",
                          path.c_str(), command.c_str(), tasks, fingerprint,
                          header.command.c_str(), header.tasks, header.fingerprint);
            throw Error{ErrorCategory::kConfig, buf};
          }
        } catch (const Error&) {
          throw;
        } catch (const std::exception& e) {
          throw Error{ErrorCategory::kIo,
                      "journal " + path + ": malformed header: " + e.what()};
        }
        needs_header = false;

        for (std::size_t i = 1; i < lines.size(); ++i) {
          Json record;
          try {
            record = Json::parse(lines[i]);
            const std::string status = record.at("status").as_string();
            const auto index = static_cast<std::size_t>(record.at("task").as_int());
            if (status == "ok") {
              payloads_[index] = record.at("payload");
            }
            // status "fail": the task is re-run on resume — nothing to keep.
          } catch (const std::exception& e) {
            if (i + 1 == lines.size()) {
              // A crash mid-append leaves exactly one truncated final line;
              // everything before it is intact, so resume from there. The
              // partial line must be cut from the file too, or the next
              // append would fuse onto it and corrupt the record.
              std::fprintf(stderr,
                           "journal %s: ignoring truncated final record (%s)\n",
                           path.c_str(), e.what());
              truncated_tail = true;
              break;
            }
            throw Error{ErrorCategory::kIo, "journal " + path + ": corrupt record on line " +
                                                std::to_string(i + 1) + ": " + e.what()};
          }
        }
        if (truncated_tail) {
          lines.pop_back();
          kept_lines = std::move(lines);
        }
      }
    }
  }

  if (truncated_tail) {
    // Rewrite the valid prefix; the handle stays open for the appends to
    // come, so a crash during the rewrite can at worst re-truncate a tail.
    out_ = std::fopen(path.c_str(), "wb");
    if (out_ == nullptr) {
      throw Error{ErrorCategory::kIo, "journal: cannot rewrite " + path};
    }
    for (const std::string& line : kept_lines) {
      std::fwrite(line.data(), 1, line.size(), out_);
      std::fputc('\n', out_);
    }
    std::fflush(out_);
  } else {
    out_ = std::fopen(path.c_str(), "ab");
    if (out_ == nullptr) {
      throw Error{ErrorCategory::kIo, "journal: cannot open " + path + " for append"};
    }
  }
  path_ = path;

  if (needs_header) {
    Json::Object head;
    head["journal"] = Json{kJournalMagic};
    head["version"] = Json{kJournalVersion};
    head["command"] = Json{header.command};
    head["fingerprint"] = Json{std::to_string(header.fingerprint)};
    head["tasks"] = Json{static_cast<std::int64_t>(header.tasks)};
    append_line(Json{std::move(head)}.dump());
  }
}

bool TaskJournal::completed(std::size_t index) const noexcept {
  return payloads_.count(index) > 0;
}

const Json* TaskJournal::payload(std::size_t index) const noexcept {
  const auto it = payloads_.find(index);
  return it == payloads_.end() ? nullptr : &it->second;
}

void TaskJournal::record_ok(std::size_t index, std::uint64_t seed, const Json& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (out_ == nullptr || payloads_.count(index) > 0) return;
  Json::Object record;
  record["status"] = Json{"ok"};
  record["task"] = Json{static_cast<std::int64_t>(index)};
  record["seed"] = Json{std::to_string(seed)};
  record["payload"] = payload;
  append_line(Json{std::move(record)}.dump());
}

void TaskJournal::record_failure(const sim::TaskFailure& failure) {
  std::lock_guard<std::mutex> lock(mu_);
  if (out_ == nullptr) return;
  Json::Object record;
  record["status"] = Json{"fail"};
  record["task"] = Json{static_cast<std::int64_t>(failure.index)};
  record["seed"] = Json{std::to_string(failure.seed)};
  record["category"] = Json{sim::to_string(failure.category)};
  record["message"] = Json{failure.message};
  record["attempts"] = Json{static_cast<std::int64_t>(failure.attempts)};
  append_line(Json{std::move(record)}.dump());
}

void TaskJournal::append_line(const std::string& line) {
  std::fwrite(line.data(), 1, line.size(), out_);
  std::fputc('\n', out_);
  std::fflush(out_);
}

// --- Payload serialization -------------------------------------------------

namespace {

Json categories_to_json(const sim::EventCategoryCounts& counts) {
  Json::Array out;
  out.reserve(counts.size());
  for (const std::uint64_t n : counts) out.emplace_back(static_cast<std::int64_t>(n));
  return Json{std::move(out)};
}

sim::EventCategoryCounts categories_from_json(const Json& v) {
  sim::EventCategoryCounts counts{};
  const Json::Array& arr = v.as_array();
  for (std::size_t i = 0; i < counts.size() && i < arr.size(); ++i) {
    counts[i] = static_cast<std::uint64_t>(arr[i].as_int());
  }
  return counts;
}

}  // namespace

Json to_journal_payload(const HostTraceResult& result) {
  Json::Object o;
  o["host"] = Json{static_cast<std::int64_t>(result.host)};
  o["snapshot"] = Json{static_cast<std::int64_t>(result.snapshot)};
  o["alt_regime"] = Json{result.alt_regime};
  o["avg_utilization"] = Json{result.avg_utilization};
  o["queue_drops"] = Json{result.queue_drops};
  o["generated_bursts"] = Json{result.generated_bursts};
  o["events_processed"] = Json{static_cast<std::int64_t>(result.events_processed)};
  o["events_by_category"] = categories_to_json(result.events_by_category);
  o["peak_events_pending"] = Json{static_cast<std::int64_t>(result.peak_events_pending)};
  o["slab_high_water"] = Json{static_cast<std::int64_t>(result.slab_high_water)};
  o["audit_violations"] = Json{static_cast<std::int64_t>(result.audit_violations)};
  o["trace_seconds"] = Json{result.summary.trace_seconds};
  Json::Array bursts;
  bursts.reserve(result.summary.bursts.size());
  for (const analysis::Burst& b : result.summary.bursts) {
    Json::Object bo;
    bo["first_bin"] = Json{static_cast<std::int64_t>(b.first_bin)};
    bo["num_bins"] = Json{static_cast<std::int64_t>(b.num_bins)};
    bo["bytes"] = Json{b.bytes};
    bo["marked_bytes"] = Json{b.marked_bytes};
    bo["retx_bytes"] = Json{b.retx_bytes};
    bo["max_active_flows"] = Json{static_cast<std::int64_t>(b.max_active_flows)};
    bo["peak_queue_packets"] = Json{b.peak_queue_packets};
    bursts.emplace_back(std::move(bo));
  }
  o["bursts"] = Json{std::move(bursts)};
  return Json{std::move(o)};
}

HostTraceResult host_trace_from_payload(const Json& payload) {
  HostTraceResult r;
  r.host = static_cast<int>(payload.at("host").as_int());
  r.snapshot = static_cast<int>(payload.at("snapshot").as_int());
  r.alt_regime = payload.at("alt_regime").as_bool();
  r.avg_utilization = payload.at("avg_utilization").as_double();
  r.queue_drops = payload.at("queue_drops").as_int();
  r.generated_bursts = payload.at("generated_bursts").as_int();
  r.events_processed = static_cast<std::uint64_t>(payload.at("events_processed").as_int());
  r.events_by_category = categories_from_json(payload.at("events_by_category"));
  r.peak_events_pending =
      static_cast<std::uint64_t>(payload.at("peak_events_pending").as_int());
  r.slab_high_water = static_cast<std::uint64_t>(payload.at("slab_high_water").as_int());
  r.audit_violations = static_cast<std::uint64_t>(payload.at("audit_violations").as_int());
  r.summary.trace_seconds = payload.at("trace_seconds").as_double();
  for (const Json& bj : payload.at("bursts").as_array()) {
    analysis::Burst b;
    b.first_bin = static_cast<std::size_t>(bj.at("first_bin").as_int());
    b.num_bins = static_cast<std::size_t>(bj.at("num_bins").as_int());
    b.bytes = bj.at("bytes").as_int();
    b.marked_bytes = bj.at("marked_bytes").as_int();
    b.retx_bytes = bj.at("retx_bytes").as_int();
    b.max_active_flows = static_cast<int>(bj.at("max_active_flows").as_int());
    b.peak_queue_packets = bj.at("peak_queue_packets").as_int();
    r.summary.bursts.push_back(b);
  }
  return r;
}

Json to_journal_payload(const ResiliencePoint& point) {
  Json::Object o;
  o["drop_rate"] = Json{point.drop_rate};
  o["flap_duration_ns"] = Json{point.flap_duration.ns()};
  o["goodput_rel"] = Json{point.goodput_rel};
  o["recovery_after_flap_ms"] = Json{point.recovery_after_flap_ms};
  o["mode"] = Json{to_string(point.mode)};
  const IncastExperimentResult& r = point.result;
  o["avg_bct_ms"] = Json{r.avg_bct_ms};
  o["max_bct_ms"] = Json{r.max_bct_ms};
  o["timeouts"] = Json{r.timeouts};
  o["fast_retransmits"] = Json{r.fast_retransmits};
  o["retransmitted_packets"] = Json{r.retransmitted_packets};
  o["queue_drops"] = Json{r.queue_drops};
  o["injected_drops"] = Json{r.injected_drops};
  o["injected_corruptions"] = Json{r.injected_corruptions};
  o["events_processed"] = Json{static_cast<std::int64_t>(r.events_processed)};
  o["events_by_category"] = categories_to_json(r.events_by_category);
  o["peak_events_pending"] = Json{static_cast<std::int64_t>(r.peak_events_pending)};
  o["slab_high_water"] = Json{static_cast<std::int64_t>(r.slab_high_water)};
  o["audit_violations"] = Json{static_cast<std::int64_t>(r.audit_violations)};
  return Json{std::move(o)};
}

ResiliencePoint resilience_point_from_payload(const Json& payload) {
  ResiliencePoint p;
  p.drop_rate = payload.at("drop_rate").as_double();
  p.flap_duration = sim::Time::nanoseconds(payload.at("flap_duration_ns").as_int());
  p.goodput_rel = payload.at("goodput_rel").as_double();
  p.recovery_after_flap_ms = payload.at("recovery_after_flap_ms").as_double();
  const std::string mode = payload.at("mode").as_string();
  p.mode = mode == "collapse"  ? DctcpMode::kCollapse
           : mode == "degenerate" ? DctcpMode::kDegenerate
                                  : DctcpMode::kSafe;
  IncastExperimentResult& r = p.result;
  r.avg_bct_ms = payload.at("avg_bct_ms").as_double();
  r.max_bct_ms = payload.at("max_bct_ms").as_double();
  r.timeouts = payload.at("timeouts").as_int();
  r.fast_retransmits = payload.at("fast_retransmits").as_int();
  r.retransmitted_packets = payload.at("retransmitted_packets").as_int();
  r.queue_drops = payload.at("queue_drops").as_int();
  r.injected_drops = payload.at("injected_drops").as_int();
  r.injected_corruptions = payload.at("injected_corruptions").as_int();
  r.events_processed = static_cast<std::uint64_t>(payload.at("events_processed").as_int());
  r.events_by_category = categories_from_json(payload.at("events_by_category"));
  r.peak_events_pending =
      static_cast<std::uint64_t>(payload.at("peak_events_pending").as_int());
  r.slab_high_water = static_cast<std::uint64_t>(payload.at("slab_high_water").as_int());
  r.audit_violations = static_cast<std::uint64_t>(payload.at("audit_violations").as_int());
  return p;
}

}  // namespace incast::core
