#include "core/task_journal.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <utility>
#include <vector>

#include "core/error.h"

namespace incast::core {

std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

namespace {

constexpr const char* kJournalMagic = "incast-task-journal";
constexpr std::int64_t kJournalVersion = 1;

// Canonical-string helpers: "key=value|" pieces in a fixed order. Doubles
// use %.17g so the string (and hence the fingerprint) round-trips the exact
// value the run will use.
void put(std::string& out, const char* key, std::int64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s=%" PRId64 "|", key, value);
  out += buf;
}

void put_u64(std::string& out, const char* key, std::uint64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s=%" PRIu64 "|", key, value);
  out += buf;
}

void put(std::string& out, const char* key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s=%.17g|", key, value);
  out += buf;
}

void put(std::string& out, const char* key, const std::string& value) {
  out += key;
  out += '=';
  out += value;
  out += '|';
}

void put_time(std::string& out, const char* key, sim::Time t) { put(out, key, t.ns()); }

void put_profile(std::string& out, const workload::ServiceProfile& p) {
  put(out, "service", p.name);
  put(out, "bursts_per_second", p.bursts_per_second);
  put(out, "body_median_flows", p.body_median_flows);
  put(out, "body_sigma", p.body_sigma);
  put(out, "min_flows", static_cast<std::int64_t>(p.min_flows));
  put(out, "max_flows", static_cast<std::int64_t>(p.max_flows));
  put(out, "low_mode_probability", p.low_mode_probability);
  put(out, "low_mode_min", static_cast<std::int64_t>(p.low_mode_min));
  put(out, "low_mode_max", static_cast<std::int64_t>(p.low_mode_max));
  put(out, "alt_median_flows", p.alt_median_flows);
  put(out, "duration_geometric_p", p.duration_geometric_p);
  put(out, "max_duration_ms", static_cast<std::int64_t>(p.max_duration_ms));
  put(out, "util_lo", p.util_lo);
  put(out, "util_hi", p.util_hi);
  put(out, "host_sigma", p.host_sigma);
}

void put_tcp(std::string& out, const tcp::TcpConfig& tcp) {
  put(out, "cc", static_cast<std::int64_t>(tcp.cc));
  put(out, "mss_bytes", tcp.mss_bytes);
  put_time(out, "min_rto", tcp.rtt.min_rto);
  put(out, "cwnd_cap_bytes", tcp.cwnd_cap_bytes.value_or(0));
  put(out, "tlp", static_cast<std::int64_t>(tcp.tail_loss_probe ? 1 : 0));
  put(out, "int_telemetry", static_cast<std::int64_t>(tcp.int_telemetry ? 1 : 0));
}

void put_queue(std::string& out, const char* prefix, const net::DropTailQueue::Config& q) {
  std::string key{prefix};
  const auto add = [&](const char* name, std::int64_t v) {
    put(out, (key + name).c_str(), v);
  };
  add("capacity_packets", q.capacity_packets);
  add("capacity_bytes", q.capacity_bytes);
  add("ecn_threshold_packets", q.ecn_threshold_packets);
  add("ecn_kmin_packets", q.ecn_kmin_packets);
  add("ecn_kmax_packets", q.ecn_kmax_packets);
  add("discipline", static_cast<std::int64_t>(q.discipline));
  add("trim_header_bytes", q.trim_header_bytes);
  add("header_capacity_packets", q.header_capacity_packets);
}

void put_pfc(std::string& out, const char* prefix, const net::LosslessInputQueue::Config& p) {
  std::string key{prefix};
  const auto add = [&](const char* name, std::int64_t v) {
    put(out, (key + name).c_str(), v);
  };
  add("xoff_bytes", p.xoff_bytes);
  add("xon_bytes", p.xon_bytes);
  add("headroom_bytes", p.headroom_bytes);
  add("pause_ns", p.pause_ns);
}

void put_fault(std::string& out, const char* prefix, const fault::LinkFaultConfig& f) {
  std::string key{prefix};
  const auto add_d = [&](const char* name, double v) {
    put(out, (key + name).c_str(), v);
  };
  add_d("drop_rate", f.drop_rate);
  add_d("corrupt_rate", f.corrupt_rate);
  add_d("duplicate_rate", f.duplicate_rate);
  add_d("reorder_rate", f.reorder_rate);
  put(out, (key + "reorder_max_delay").c_str(), f.reorder_max_delay.ns());
  add_d("ge_good_to_bad", f.ge_good_to_bad);
  add_d("ge_bad_to_good", f.ge_bad_to_good);
  add_d("ge_drop_bad", f.ge_drop_bad);
  add_d("ge_drop_good", f.ge_drop_good);
}

}  // namespace

std::string canonical_config(const FleetConfig& config) {
  std::string out{"fleet|"};
  put_profile(out, config.profile);
  put(out, "num_hosts", static_cast<std::int64_t>(config.num_hosts));
  put(out, "num_snapshots", static_cast<std::int64_t>(config.num_snapshots));
  put_time(out, "trace_duration", config.trace_duration);
  put(out, "queue_capacity_packets", config.queue_capacity_packets);
  put(out, "ecn_threshold_fraction", config.ecn_threshold_fraction);
  put(out, "shared_pool_bytes", config.shared_pool_bytes);
  put(out, "contention_mode", static_cast<std::int64_t>(config.contention_mode));
  put_time(out, "contention_mean_on", config.contention.mean_on);
  put_time(out, "contention_mean_off", config.contention.mean_off);
  put(out, "contention_min_fraction", config.contention.min_fraction);
  put(out, "contention_max_fraction", config.contention.max_fraction);
  put_tcp(out, config.tcp);
  put(out, "nic_rate_bps", config.nic_rate.bps());
  put(out, "regime_block_snapshots", static_cast<std::int64_t>(config.regime_block_snapshots));
  put_u64(out, "base_seed", config.base_seed);
  put(out, "utilization_threshold", config.detector.utilization_threshold);
  put(out, "incast_flow_threshold",
      static_cast<std::int64_t>(config.detector.incast_flow_threshold));
  return out;
}

std::string canonical_config(const ResilienceConfig& config) {
  std::string out{"faults|"};
  const IncastExperimentConfig& base = config.base;
  put(out, "num_flows", static_cast<std::int64_t>(base.num_flows));
  put_time(out, "burst_duration", base.burst_duration);
  put(out, "num_bursts", static_cast<std::int64_t>(base.num_bursts));
  put(out, "discard_bursts", static_cast<std::int64_t>(base.discard_bursts));
  put_time(out, "inter_burst_gap", base.inter_burst_gap);
  put(out, "schedule", static_cast<std::int64_t>(base.schedule));
  put(out, "queue_capacity_packets", base.topology.switch_queue.capacity_packets);
  put(out, "ecn_threshold_packets", base.topology.switch_queue.ecn_threshold_packets);
  put_tcp(out, base.tcp);
  put_time(out, "max_sim_time", base.max_sim_time);
  put_u64(out, "seed", base.seed);
  put_fault(out, "template_", config.fault_template);
  out += "drop_rates=";
  for (const double rate : config.drop_rates) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g,", rate);
    out += buf;
  }
  out += "|flap_durations=";
  for (const sim::Time d : config.flap_durations) {
    out += std::to_string(d.ns());
    out += ',';
  }
  out += '|';
  put_time(out, "flap_at", config.flap_at);
  return out;
}

std::string canonical_config(const ScalingConfig& config) {
  std::string out{"scaling|"};
  out += "degrees=";
  for (const int d : config.degrees) {
    out += std::to_string(d);
    out += ',';
  }
  out += '|';
  const fabric::FatTreeConfig& f = config.fabric;
  put(out, "num_pods", static_cast<std::int64_t>(f.num_pods));
  put(out, "leaves_per_pod", static_cast<std::int64_t>(f.leaves_per_pod));
  put(out, "hosts_per_leaf", static_cast<std::int64_t>(f.hosts_per_leaf));
  put(out, "aggs_per_pod", static_cast<std::int64_t>(f.aggs_per_pod));
  put(out, "num_spines", static_cast<std::int64_t>(f.num_spines));
  put(out, "host_link_bps", f.host_link.bps());
  put(out, "leaf_uplink_bps", f.leaf_uplink.bps());
  put(out, "spine_link_bps", f.spine_link.bps());
  put_time(out, "link_delay", f.link_delay);
  put_queue(out, "switch_queue_", f.switch_queue);
  put_queue(out, "host_queue_", f.host_queue);
  put(out, "shared_buffer", static_cast<std::int64_t>(f.shared_buffer ? 1 : 0));
  if (f.shared_buffer) {
    put(out, "shared_buffer_bytes", f.shared_buffer->total_bytes);
    put(out, "shared_buffer_alpha", f.shared_buffer->alpha);
  }
  put(out, "fabric_pfc", static_cast<std::int64_t>(f.pfc ? 1 : 0));
  if (f.pfc) put_pfc(out, "fabric_pfc_", *f.pfc);
  // f.ecmp_seed is excluded: each point overwrites it with its derived seed.
  put(out, "bytes_per_flow", config.bytes_per_flow);
  put_tcp(out, config.tcp);
  put_time(out, "max_sim_time", config.max_sim_time);
  // Engine identity, not domain count: the parallel engine is byte-identical
  // at any N, so resuming under a different --domains is safe, while legacy
  // vs parallel are distinct deterministic sequences (see the header).
  put(out, "engine", static_cast<std::int64_t>(config.domains > 0 ? 1 : 0));
  put_time(out, "lookahead_override", config.lookahead_override);
  put(out, "flow_trace", static_cast<std::int64_t>(config.flow_trace ? 1 : 0));
  put_u64(out, "flow_trace_sample_every", config.flow_trace_sample_every);
  put_u64(out, "seed", config.seed);
  return out;
}

std::string canonical_config(const CollateralConfig& config) {
  std::string out{"collateral|"};
  out += "modes=";
  for (const QueueMode mode : config.modes) {
    out += to_string(mode);
    out += ',';
  }
  out += "|degrees=";
  for (const int d : config.degrees) {
    out += std::to_string(d);
    out += ',';
  }
  out += '|';
  put(out, "num_bursts", static_cast<std::int64_t>(config.num_bursts));
  put_time(out, "burst_duration", config.burst_duration);
  put_time(out, "inter_burst_gap", config.inter_burst_gap);
  // Topology template. num_senders/num_receivers are overridden per point
  // (degree + 1 senders, 2 receivers) and switch_queue is reshaped per mode
  // from the knobs below, so none of those three enter the fingerprint.
  const net::DumbbellConfig& t = config.topology;
  put(out, "host_link_bps", t.host_link.bps());
  put(out, "core_link_bps", t.core_link.bps());
  put(out, "receiver_link_bps",
      t.receiver_link ? t.receiver_link->bps() : static_cast<std::int64_t>(-1));
  put_time(out, "link_delay", t.link_delay);
  put_queue(out, "host_queue_", t.host_queue);
  put(out, "queue_capacity_packets", static_cast<std::int64_t>(config.queue_capacity_packets));
  put(out, "ecn_threshold_packets", static_cast<std::int64_t>(config.ecn_threshold_packets));
  put(out, "shared_buffer_bytes", config.shared_buffer_bytes);
  put(out, "shared_buffer_alpha", config.shared_buffer_alpha);
  put_pfc(out, "pfc_", config.pfc);
  put(out, "pfc_queue_capacity_packets",
      static_cast<std::int64_t>(config.pfc_queue_capacity_packets));
  put(out, "trim_queue_capacity_packets",
      static_cast<std::int64_t>(config.trim_queue_capacity_packets));
  put(out, "victim_cwnd_cap_bytes", config.victim_cwnd_cap_bytes);
  put_tcp(out, config.tcp);
  put(out, "pfc_cc", static_cast<std::int64_t>(config.pfc_cc));
  put_time(out, "max_sim_time", config.max_sim_time);
  put(out, "flow_trace", static_cast<std::int64_t>(config.flow_trace ? 1 : 0));
  put_u64(out, "flow_trace_sample_every", config.flow_trace_sample_every);
  put_u64(out, "seed", config.seed);
  return out;
}

TaskJournal::~TaskJournal() {
  if (out_ != nullptr) std::fclose(out_);
}

void TaskJournal::open(const std::string& path, const JournalHeader& header) {
  if (out_ != nullptr) throw Error{ErrorCategory::kInternal, "journal: already open"};

  bool needs_header = true;
  bool truncated_tail = false;
  std::vector<std::string> kept_lines;
  {
    std::ifstream in{path};
    if (in) {
      // Existing journal: validate the header and load completed tasks.
      // Collect the lines first so "last line" is well-defined for the
      // truncation tolerance below.
      std::vector<std::string> lines;
      std::string line;
      while (std::getline(in, line)) lines.push_back(line);
      if (!lines.empty()) {
        Json head;
        try {
          head = Json::parse(lines.front());
        } catch (const std::exception& e) {
          throw Error{ErrorCategory::kIo,
                      "journal " + path + ": unreadable header: " + e.what()};
        }
        const Json* magic = head.find("journal");
        if (magic == nullptr || !magic->is_string() ||
            magic->as_string() != kJournalMagic) {
          throw Error{ErrorCategory::kIo,
                      "journal " + path + ": not an incast task journal"};
        }
        try {
          if (head.at("version").as_int() != kJournalVersion) {
            throw Error{ErrorCategory::kConfig,
                        "journal " + path + ": unsupported version " +
                            std::to_string(head.at("version").as_int())};
          }
          const std::string command = head.at("command").as_string();
          const std::uint64_t fingerprint =
              std::stoull(head.at("fingerprint").as_string());
          const auto tasks = static_cast<std::uint64_t>(head.at("tasks").as_int());
          if (command != header.command || fingerprint != header.fingerprint ||
              tasks != header.tasks) {
            char buf[256];
            std::snprintf(buf, sizeof(buf),
                          "journal %s was written by a different run (%s, %" PRIu64
                          " task(s), fingerprint %016" PRIx64 "; this run: %s, %" PRIu64
                          " task(s), fingerprint %016" PRIx64
                          ") — refusing to resume; delete the journal or rerun the "
                          "original configuration",
                          path.c_str(), command.c_str(), tasks, fingerprint,
                          header.command.c_str(), header.tasks, header.fingerprint);
            throw Error{ErrorCategory::kConfig, buf};
          }
        } catch (const Error&) {
          throw;
        } catch (const std::exception& e) {
          throw Error{ErrorCategory::kIo,
                      "journal " + path + ": malformed header: " + e.what()};
        }
        needs_header = false;

        for (std::size_t i = 1; i < lines.size(); ++i) {
          Json record;
          try {
            record = Json::parse(lines[i]);
            const std::string status = record.at("status").as_string();
            const auto index = static_cast<std::size_t>(record.at("task").as_int());
            if (status == "ok") {
              payloads_[index] = record.at("payload");
            }
            // status "fail": the task is re-run on resume — nothing to keep.
          } catch (const std::exception& e) {
            if (i + 1 == lines.size()) {
              // A crash mid-append leaves exactly one truncated final line;
              // everything before it is intact, so resume from there. The
              // partial line must be cut from the file too, or the next
              // append would fuse onto it and corrupt the record.
              std::fprintf(stderr,
                           "journal %s: ignoring truncated final record (%s)\n",
                           path.c_str(), e.what());
              truncated_tail = true;
              break;
            }
            throw Error{ErrorCategory::kIo, "journal " + path + ": corrupt record on line " +
                                                std::to_string(i + 1) + ": " + e.what()};
          }
        }
        if (truncated_tail) {
          lines.pop_back();
          kept_lines = std::move(lines);
        }
      }
    }
  }

  if (truncated_tail) {
    // Rewrite the valid prefix; the handle stays open for the appends to
    // come, so a crash during the rewrite can at worst re-truncate a tail.
    out_ = std::fopen(path.c_str(), "wb");
    if (out_ == nullptr) {
      throw Error{ErrorCategory::kIo, "journal: cannot rewrite " + path};
    }
    for (const std::string& line : kept_lines) {
      std::fwrite(line.data(), 1, line.size(), out_);
      std::fputc('\n', out_);
    }
    std::fflush(out_);
  } else {
    out_ = std::fopen(path.c_str(), "ab");
    if (out_ == nullptr) {
      throw Error{ErrorCategory::kIo, "journal: cannot open " + path + " for append"};
    }
  }
  path_ = path;

  if (needs_header) {
    Json::Object head;
    head["journal"] = Json{kJournalMagic};
    head["version"] = Json{kJournalVersion};
    head["command"] = Json{header.command};
    head["fingerprint"] = Json{std::to_string(header.fingerprint)};
    head["tasks"] = Json{static_cast<std::int64_t>(header.tasks)};
    append_line(Json{std::move(head)}.dump());
  }
}

bool TaskJournal::completed(std::size_t index) const noexcept {
  return payloads_.count(index) > 0;
}

const Json* TaskJournal::payload(std::size_t index) const noexcept {
  const auto it = payloads_.find(index);
  return it == payloads_.end() ? nullptr : &it->second;
}

void TaskJournal::record_ok(std::size_t index, std::uint64_t seed, const Json& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (out_ == nullptr || payloads_.count(index) > 0) return;
  Json::Object record;
  record["status"] = Json{"ok"};
  record["task"] = Json{static_cast<std::int64_t>(index)};
  record["seed"] = Json{std::to_string(seed)};
  record["payload"] = payload;
  append_line(Json{std::move(record)}.dump());
}

void TaskJournal::record_failure(const sim::TaskFailure& failure) {
  std::lock_guard<std::mutex> lock(mu_);
  if (out_ == nullptr) return;
  Json::Object record;
  record["status"] = Json{"fail"};
  record["task"] = Json{static_cast<std::int64_t>(failure.index)};
  record["seed"] = Json{std::to_string(failure.seed)};
  record["category"] = Json{sim::to_string(failure.category)};
  record["message"] = Json{failure.message};
  record["attempts"] = Json{static_cast<std::int64_t>(failure.attempts)};
  append_line(Json{std::move(record)}.dump());
}

void TaskJournal::append_line(const std::string& line) {
  std::fwrite(line.data(), 1, line.size(), out_);
  std::fputc('\n', out_);
  std::fflush(out_);
}

// --- Payload serialization -------------------------------------------------

namespace {

Json categories_to_json(const sim::EventCategoryCounts& counts) {
  Json::Array out;
  out.reserve(counts.size());
  for (const std::uint64_t n : counts) out.emplace_back(static_cast<std::int64_t>(n));
  return Json{std::move(out)};
}

sim::EventCategoryCounts categories_from_json(const Json& v) {
  sim::EventCategoryCounts counts{};
  const Json::Array& arr = v.as_array();
  for (std::size_t i = 0; i < counts.size() && i < arr.size(); ++i) {
    counts[i] = static_cast<std::uint64_t>(arr[i].as_int());
  }
  return counts;
}

Json fct_rows_to_json(const std::vector<obs::TailAttributionRow>& rows) {
  Json::Array arr;
  arr.reserve(rows.size());
  for (const obs::TailAttributionRow& row : rows) {
    Json::Object o;
    o["pctl"] = Json{std::string{row.pctl}};
    o["flows"] = Json{static_cast<std::int64_t>(row.flows)};
    const obs::FlowBreakdown& b = row.flow;
    o["flow"] = Json{static_cast<std::int64_t>(b.flow)};
    o["fct_ns"] = Json{b.fct_ns};
    o["serialization_ns"] = Json{b.serialization_ns};
    o["propagation_ns"] = Json{b.propagation_ns};
    o["q_host_ns"] = Json{b.q_host_ns};
    o["q_tor_ns"] = Json{b.q_tor_ns};
    o["q_agg_ns"] = Json{b.q_agg_ns};
    o["q_spine_ns"] = Json{b.q_spine_ns};
    o["pfc_pause_ns"] = Json{b.pfc_pause_ns};
    o["cwnd_limited_ns"] = Json{b.cwnd_limited_ns};
    o["rto_wait_ns"] = Json{b.rto_wait_ns};
    o["fast_recovery_ns"] = Json{b.fast_recovery_ns};
    o["nack_recovery_ns"] = Json{b.nack_recovery_ns};
    o["other_ns"] = Json{b.other_ns};
    arr.emplace_back(std::move(o));
  }
  return Json{std::move(arr)};
}

std::vector<obs::TailAttributionRow> fct_rows_from_json(const Json& v) {
  std::vector<obs::TailAttributionRow> rows;
  for (const Json& rj : v.as_array()) {
    obs::TailAttributionRow row;
    // pctl is a static-string field; map the stored text back onto the same
    // literals tail_attribution() emits.
    const std::string pctl = rj.at("pctl").as_string();
    row.pctl = pctl == "p50" ? "p50" : pctl == "p99" ? "p99" : pctl == "p999" ? "p999" : "";
    row.flows = static_cast<int>(rj.at("flows").as_int());
    obs::FlowBreakdown& b = row.flow;
    b.flow = static_cast<std::uint64_t>(rj.at("flow").as_int());
    b.fct_ns = rj.at("fct_ns").as_int();
    b.serialization_ns = rj.at("serialization_ns").as_int();
    b.propagation_ns = rj.at("propagation_ns").as_int();
    b.q_host_ns = rj.at("q_host_ns").as_int();
    b.q_tor_ns = rj.at("q_tor_ns").as_int();
    b.q_agg_ns = rj.at("q_agg_ns").as_int();
    b.q_spine_ns = rj.at("q_spine_ns").as_int();
    b.pfc_pause_ns = rj.at("pfc_pause_ns").as_int();
    b.cwnd_limited_ns = rj.at("cwnd_limited_ns").as_int();
    b.rto_wait_ns = rj.at("rto_wait_ns").as_int();
    b.fast_recovery_ns = rj.at("fast_recovery_ns").as_int();
    b.nack_recovery_ns = rj.at("nack_recovery_ns").as_int();
    b.other_ns = rj.at("other_ns").as_int();
    rows.push_back(row);
  }
  return rows;
}

}  // namespace

Json to_journal_payload(const HostTraceResult& result) {
  Json::Object o;
  o["host"] = Json{static_cast<std::int64_t>(result.host)};
  o["snapshot"] = Json{static_cast<std::int64_t>(result.snapshot)};
  o["alt_regime"] = Json{result.alt_regime};
  o["avg_utilization"] = Json{result.avg_utilization};
  o["queue_drops"] = Json{result.queue_drops};
  o["generated_bursts"] = Json{result.generated_bursts};
  o["events_processed"] = Json{static_cast<std::int64_t>(result.events_processed)};
  o["events_by_category"] = categories_to_json(result.events_by_category);
  o["peak_events_pending"] = Json{static_cast<std::int64_t>(result.peak_events_pending)};
  o["slab_high_water"] = Json{static_cast<std::int64_t>(result.slab_high_water)};
  o["audit_violations"] = Json{static_cast<std::int64_t>(result.audit_violations)};
  o["trace_seconds"] = Json{result.summary.trace_seconds};
  Json::Array bursts;
  bursts.reserve(result.summary.bursts.size());
  for (const analysis::Burst& b : result.summary.bursts) {
    Json::Object bo;
    bo["first_bin"] = Json{static_cast<std::int64_t>(b.first_bin)};
    bo["num_bins"] = Json{static_cast<std::int64_t>(b.num_bins)};
    bo["bytes"] = Json{b.bytes};
    bo["marked_bytes"] = Json{b.marked_bytes};
    bo["retx_bytes"] = Json{b.retx_bytes};
    bo["max_active_flows"] = Json{static_cast<std::int64_t>(b.max_active_flows)};
    bo["peak_queue_packets"] = Json{b.peak_queue_packets};
    bursts.emplace_back(std::move(bo));
  }
  o["bursts"] = Json{std::move(bursts)};
  return Json{std::move(o)};
}

HostTraceResult host_trace_from_payload(const Json& payload) {
  HostTraceResult r;
  r.host = static_cast<int>(payload.at("host").as_int());
  r.snapshot = static_cast<int>(payload.at("snapshot").as_int());
  r.alt_regime = payload.at("alt_regime").as_bool();
  r.avg_utilization = payload.at("avg_utilization").as_double();
  r.queue_drops = payload.at("queue_drops").as_int();
  r.generated_bursts = payload.at("generated_bursts").as_int();
  r.events_processed = static_cast<std::uint64_t>(payload.at("events_processed").as_int());
  r.events_by_category = categories_from_json(payload.at("events_by_category"));
  r.peak_events_pending =
      static_cast<std::uint64_t>(payload.at("peak_events_pending").as_int());
  r.slab_high_water = static_cast<std::uint64_t>(payload.at("slab_high_water").as_int());
  r.audit_violations = static_cast<std::uint64_t>(payload.at("audit_violations").as_int());
  r.summary.trace_seconds = payload.at("trace_seconds").as_double();
  for (const Json& bj : payload.at("bursts").as_array()) {
    analysis::Burst b;
    b.first_bin = static_cast<std::size_t>(bj.at("first_bin").as_int());
    b.num_bins = static_cast<std::size_t>(bj.at("num_bins").as_int());
    b.bytes = bj.at("bytes").as_int();
    b.marked_bytes = bj.at("marked_bytes").as_int();
    b.retx_bytes = bj.at("retx_bytes").as_int();
    b.max_active_flows = static_cast<int>(bj.at("max_active_flows").as_int());
    b.peak_queue_packets = bj.at("peak_queue_packets").as_int();
    r.summary.bursts.push_back(b);
  }
  return r;
}

Json to_journal_payload(const ResiliencePoint& point) {
  Json::Object o;
  o["drop_rate"] = Json{point.drop_rate};
  o["flap_duration_ns"] = Json{point.flap_duration.ns()};
  o["goodput_rel"] = Json{point.goodput_rel};
  o["recovery_after_flap_ms"] = Json{point.recovery_after_flap_ms};
  o["mode"] = Json{to_string(point.mode)};
  const IncastExperimentResult& r = point.result;
  o["avg_bct_ms"] = Json{r.avg_bct_ms};
  o["max_bct_ms"] = Json{r.max_bct_ms};
  o["timeouts"] = Json{r.timeouts};
  o["fast_retransmits"] = Json{r.fast_retransmits};
  o["retransmitted_packets"] = Json{r.retransmitted_packets};
  o["queue_drops"] = Json{r.queue_drops};
  o["injected_drops"] = Json{r.injected_drops};
  o["injected_corruptions"] = Json{r.injected_corruptions};
  o["events_processed"] = Json{static_cast<std::int64_t>(r.events_processed)};
  o["events_by_category"] = categories_to_json(r.events_by_category);
  o["peak_events_pending"] = Json{static_cast<std::int64_t>(r.peak_events_pending)};
  o["slab_high_water"] = Json{static_cast<std::int64_t>(r.slab_high_water)};
  o["audit_violations"] = Json{static_cast<std::int64_t>(r.audit_violations)};
  return Json{std::move(o)};
}

ResiliencePoint resilience_point_from_payload(const Json& payload) {
  ResiliencePoint p;
  p.drop_rate = payload.at("drop_rate").as_double();
  p.flap_duration = sim::Time::nanoseconds(payload.at("flap_duration_ns").as_int());
  p.goodput_rel = payload.at("goodput_rel").as_double();
  p.recovery_after_flap_ms = payload.at("recovery_after_flap_ms").as_double();
  const std::string mode = payload.at("mode").as_string();
  p.mode = mode == "collapse"  ? DctcpMode::kCollapse
           : mode == "degenerate" ? DctcpMode::kDegenerate
                                  : DctcpMode::kSafe;
  IncastExperimentResult& r = p.result;
  r.avg_bct_ms = payload.at("avg_bct_ms").as_double();
  r.max_bct_ms = payload.at("max_bct_ms").as_double();
  r.timeouts = payload.at("timeouts").as_int();
  r.fast_retransmits = payload.at("fast_retransmits").as_int();
  r.retransmitted_packets = payload.at("retransmitted_packets").as_int();
  r.queue_drops = payload.at("queue_drops").as_int();
  r.injected_drops = payload.at("injected_drops").as_int();
  r.injected_corruptions = payload.at("injected_corruptions").as_int();
  r.events_processed = static_cast<std::uint64_t>(payload.at("events_processed").as_int());
  r.events_by_category = categories_from_json(payload.at("events_by_category"));
  r.peak_events_pending =
      static_cast<std::uint64_t>(payload.at("peak_events_pending").as_int());
  r.slab_high_water = static_cast<std::uint64_t>(payload.at("slab_high_water").as_int());
  r.audit_violations = static_cast<std::uint64_t>(payload.at("audit_violations").as_int());
  return p;
}

Json to_journal_payload(const ScalingPoint& point) {
  Json::Object o;
  o["degree"] = Json{static_cast<std::int64_t>(point.degree)};
  o["fct_ms"] = Json{point.fct_ms};
  o["optimal_ms"] = Json{point.optimal_ms};
  o["overhead_pct"] = Json{point.overhead_pct};
  o["completed_flows"] = Json{static_cast<std::int64_t>(point.completed_flows)};
  o["timeouts"] = Json{point.timeouts};
  o["retransmits"] = Json{point.retransmits};
  o["queue_drops"] = Json{point.queue_drops};
  o["flow_state_bytes"] = Json{static_cast<std::int64_t>(point.flow_state_bytes)};
  o["packet_pool_bytes"] = Json{static_cast<std::int64_t>(point.packet_pool_bytes)};
  o["routing_bytes"] = Json{static_cast<std::int64_t>(point.routing_bytes)};
  o["event_bytes"] = Json{static_cast<std::int64_t>(point.event_bytes)};
  o["bytes_per_flow"] = Json{static_cast<std::int64_t>(point.bytes_per_flow)};
  o["events_processed"] = Json{static_cast<std::int64_t>(point.events_processed)};
  o["audit_violations"] = Json{static_cast<std::int64_t>(point.audit_violations)};
  o["fct_rows"] = fct_rows_to_json(point.fct_rows);
  o["traced_flows"] = Json{static_cast<std::int64_t>(point.traced_flows)};
  o["flow_trace_incomplete"] = Json{static_cast<std::int64_t>(point.flow_trace_incomplete)};
  o["int_hop_overflows"] = Json{point.int_hop_overflows};
  // The parallel-engine diagnostics (windows, per-domain splits, stalls) are
  // intentionally absent — see the header. A replayed point reports zeros.
  return Json{std::move(o)};
}

ScalingPoint scaling_point_from_payload(const Json& payload) {
  ScalingPoint p;
  p.degree = static_cast<int>(payload.at("degree").as_int());
  p.fct_ms = payload.at("fct_ms").as_double();
  p.optimal_ms = payload.at("optimal_ms").as_double();
  p.overhead_pct = payload.at("overhead_pct").as_double();
  p.completed_flows = static_cast<int>(payload.at("completed_flows").as_int());
  p.timeouts = payload.at("timeouts").as_int();
  p.retransmits = payload.at("retransmits").as_int();
  p.queue_drops = payload.at("queue_drops").as_int();
  p.flow_state_bytes = static_cast<std::uint64_t>(payload.at("flow_state_bytes").as_int());
  p.packet_pool_bytes = static_cast<std::uint64_t>(payload.at("packet_pool_bytes").as_int());
  p.routing_bytes = static_cast<std::uint64_t>(payload.at("routing_bytes").as_int());
  p.event_bytes = static_cast<std::uint64_t>(payload.at("event_bytes").as_int());
  p.bytes_per_flow = static_cast<std::uint64_t>(payload.at("bytes_per_flow").as_int());
  p.events_processed = static_cast<std::uint64_t>(payload.at("events_processed").as_int());
  p.audit_violations = static_cast<std::uint64_t>(payload.at("audit_violations").as_int());
  p.fct_rows = fct_rows_from_json(payload.at("fct_rows"));
  p.traced_flows = static_cast<std::uint64_t>(payload.at("traced_flows").as_int());
  p.flow_trace_incomplete =
      static_cast<std::uint64_t>(payload.at("flow_trace_incomplete").as_int());
  p.int_hop_overflows = payload.at("int_hop_overflows").as_int();
  return p;
}

Json to_journal_payload(const CollateralPoint& point) {
  Json::Object o;
  o["mode"] = Json{to_string(point.mode)};
  o["degree"] = Json{static_cast<std::int64_t>(point.degree)};
  o["victim_goodput_gbps"] = Json{point.victim_goodput_gbps};
  o["victim_delivered_bytes"] = Json{point.victim_delivered_bytes};
  o["victim_paused_ms"] = Json{point.victim_paused_ms};
  o["victim_retransmits"] = Json{point.victim_retransmits};
  o["victim_timeouts"] = Json{point.victim_timeouts};
  o["victim_nacks"] = Json{point.victim_nacks};
  o["incast_avg_bct_ms"] = Json{point.incast_avg_bct_ms};
  o["incast_max_bct_ms"] = Json{point.incast_max_bct_ms};
  o["incast_timeouts"] = Json{point.incast_timeouts};
  o["queue_drops"] = Json{point.queue_drops};
  o["trimmed_packets"] = Json{point.trimmed_packets};
  o["trimmed_bytes"] = Json{point.trimmed_bytes};
  o["pfc_pause_frames"] = Json{point.pfc_pause_frames};
  o["pfc_resume_frames"] = Json{point.pfc_resume_frames};
  o["pfc_overflow_drops"] = Json{point.pfc_overflow_drops};
  o["incast_nacks"] = Json{point.incast_nacks};
  o["events_processed"] = Json{static_cast<std::int64_t>(point.events_processed)};
  o["audit_violations"] = Json{static_cast<std::int64_t>(point.audit_violations)};
  o["fct_rows"] = fct_rows_to_json(point.fct_rows);
  o["traced_flows"] = Json{static_cast<std::int64_t>(point.traced_flows)};
  o["flow_trace_incomplete"] = Json{static_cast<std::int64_t>(point.flow_trace_incomplete)};
  o["int_hop_overflows"] = Json{point.int_hop_overflows};
  return Json{std::move(o)};
}

CollateralPoint collateral_point_from_payload(const Json& payload) {
  CollateralPoint p;
  const std::string mode = payload.at("mode").as_string();
  if (!parse_queue_mode(mode, p.mode)) {
    throw Error{ErrorCategory::kIo, "journal payload: unknown queue mode " + mode};
  }
  p.degree = static_cast<int>(payload.at("degree").as_int());
  p.victim_goodput_gbps = payload.at("victim_goodput_gbps").as_double();
  p.victim_delivered_bytes = payload.at("victim_delivered_bytes").as_int();
  p.victim_paused_ms = payload.at("victim_paused_ms").as_double();
  p.victim_retransmits = payload.at("victim_retransmits").as_int();
  p.victim_timeouts = payload.at("victim_timeouts").as_int();
  p.victim_nacks = payload.at("victim_nacks").as_int();
  p.incast_avg_bct_ms = payload.at("incast_avg_bct_ms").as_double();
  p.incast_max_bct_ms = payload.at("incast_max_bct_ms").as_double();
  p.incast_timeouts = payload.at("incast_timeouts").as_int();
  p.queue_drops = payload.at("queue_drops").as_int();
  p.trimmed_packets = payload.at("trimmed_packets").as_int();
  p.trimmed_bytes = payload.at("trimmed_bytes").as_int();
  p.pfc_pause_frames = payload.at("pfc_pause_frames").as_int();
  p.pfc_resume_frames = payload.at("pfc_resume_frames").as_int();
  p.pfc_overflow_drops = payload.at("pfc_overflow_drops").as_int();
  p.incast_nacks = payload.at("incast_nacks").as_int();
  p.events_processed = static_cast<std::uint64_t>(payload.at("events_processed").as_int());
  p.audit_violations = static_cast<std::uint64_t>(payload.at("audit_violations").as_int());
  p.fct_rows = fct_rows_from_json(payload.at("fct_rows"));
  p.traced_flows = static_cast<std::uint64_t>(payload.at("traced_flows").as_int());
  p.flow_trace_incomplete =
      static_cast<std::uint64_t>(payload.at("flow_trace_incomplete").as_int());
  p.int_hop_overflows = payload.at("int_hop_overflows").as_int();
  return p;
}

}  // namespace incast::core
