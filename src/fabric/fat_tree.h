// FatTree: a multi-tier Clos fabric builder on the net:: substrate.
//
// Builds the topology class the paper's Section 3 measurements come from: a
// pod-based fat-tree. Hosts sit under leaf (ToR) switches; leaves are
// grouped into pods. With aggs_per_pod == 0 the fabric is a two-tier
// leaf-spine: every leaf connects directly to every spine. With
// aggs_per_pod > 0 it is a three-tier Clos: leaves connect to their pod's
// aggregation switches, and every aggregation switch connects to every
// spine.
//
// Routing is destination-based up/down: traffic to a local host goes out
// the downlink; everything else climbs via an ECMP group over the uplinks
// and descends deterministically (spines reach a pod through an ECMP group
// over that pod's aggs in the three-tier case). All ECMP choices use the
// switches' seeded symmetric flow hash, so a seed fully determines every
// flow's path and a flow's ACKs hash identically to its data.
//
// Every unidirectional link is registered in the LinkDirectory under
// "<from>-><to>" (e.g. "p0.l1->s0"), so fault profiles and telemetry can
// address any fabric link uniformly.
//
// The degenerate case — 1 pod, 2 leaves, 1 spine, no aggs, leaf uplinks at
// the dumbbell's core rate — reproduces the Section 4 dumbbell: senders on
// one leaf, receiver on the other, the same 10:1 bottleneck at the receiver
// downlink, with one extra switch hop through the spine.
#ifndef INCAST_FABRIC_FAT_TREE_H_
#define INCAST_FABRIC_FAT_TREE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/host.h"
#include "net/link_directory.h"
#include "net/switch.h"
#include "sim/simulator.h"
#include "sim/units.h"

namespace incast::fabric {

struct FatTreeConfig {
  int num_pods{2};
  int leaves_per_pod{2};
  int hosts_per_leaf{8};
  // Aggregation switches per pod; 0 builds the two-tier leaf-spine.
  int aggs_per_pod{0};
  int num_spines{2};

  // Link rates per tier. Oversubscription at the leaf is
  // (hosts_per_leaf * host_link) / (num_uplinks * leaf_uplink).
  sim::Bandwidth host_link{sim::Bandwidth::gigabits_per_second(10)};
  sim::Bandwidth leaf_uplink{sim::Bandwidth::gigabits_per_second(40)};
  // Agg <-> spine rate; unused in the two-tier fabric.
  sim::Bandwidth spine_link{sim::Bandwidth::gigabits_per_second(100)};

  sim::Time link_delay{sim::Time::nanoseconds(4500)};
  net::DropTailQueue::Config switch_queue{.capacity_packets = 1333,
                                          .ecn_threshold_packets = 65};
  net::DropTailQueue::Config host_queue{.capacity_packets = 1'000'000,
                                        .ecn_threshold_packets = 0};
  // If set, every leaf shares one buffer pool across its egress queues.
  std::optional<net::SharedBufferPool::Config> shared_buffer;

  // If set, every switch in the fabric runs PFC lossless Ethernet
  // (per-ingress VIQs pausing the upstream hop at XOFF) — the lossless
  // column of the scenario matrix.
  std::optional<net::LosslessInputQueue::Config> pfc;

  // Seed for every switch's ECMP flow hash. Distinct seeds yield distinct
  // collision patterns; a fixed seed reproduces the exact path assignment.
  std::uint64_t ecmp_seed{1};
};

// Canonical node names, shared by builders and tests: pods are p<i>, leaves
// p<i>.l<j>, hosts p<i>.l<j>.h<k>, aggs p<i>.a<j>, spines s<i>. Link names
// in the LinkDirectory are "<from>-><to>" of these.
[[nodiscard]] std::string host_node_name(int pod, int leaf, int slot);
[[nodiscard]] std::string leaf_node_name(int pod, int leaf);
[[nodiscard]] std::string agg_node_name(int pod, int agg);
[[nodiscard]] std::string spine_node_name(int spine);

// How a fabric is sharded across parallel-engine domains. A rack (one leaf
// switch plus its hosts) is the atomic unit: host<->leaf links carry the
// heaviest traffic and must never cross a domain boundary, so only
// leaf<->agg/spine (and agg<->spine) links become mailbox links.
struct DomainAssignment {
  int domains{1};
  std::vector<int> leaf_domain;   // per global leaf; its hosts follow it
  std::vector<int> agg_domain;    // per global agg (pod-major)
  std::vector<int> spine_domain;  // per spine
  // Conservative lookahead: the minimum propagation delay over every link
  // that can cross domains under this assignment.
  sim::Time lookahead{sim::Time::zero()};
};

// Rack-domain decomposition: leaves (with their racks) round-robin over the
// domains, and the core tier (aggs in a three-tier fabric, spines always)
// round-robins as well, so core switches spread across domains instead of
// serializing on one. `domains` may exceed the entity count — surplus
// domains simply idle. Throws std::invalid_argument on domains < 1.
[[nodiscard]] DomainAssignment assign_rack_domains(const FatTreeConfig& config,
                                                   int domains);

class FatTree : public net::LinkDirectory {
 public:
  // Throws std::invalid_argument on a non-positive pod/leaf/host/spine
  // count or a negative agg count.
  FatTree(sim::Simulator& sim, const FatTreeConfig& config);

  // Domain-decomposed build for the parallel engine: every node is
  // constructed against its domain's simulator (`sims[d]` = domain d) and
  // tagged with Node::set_domain, so a DomainBridge can be attached over
  // nodes(). Node ids, link wiring, routes, and ECMP seeding are identical
  // to the single-simulator build — decomposition changes where events
  // execute, never what the topology is. Throws std::invalid_argument if
  // the assignment's shape does not match the config or an index is out of
  // range of `sims`.
  FatTree(const std::vector<sim::Simulator*>& sims,
          const DomainAssignment& assignment, const FatTreeConfig& config);

  [[nodiscard]] const FatTreeConfig& config() const noexcept { return config_; }
  [[nodiscard]] bool three_tier() const noexcept { return config_.aggs_per_pod > 0; }

  [[nodiscard]] int num_leaves() const noexcept {
    return config_.num_pods * config_.leaves_per_pod;
  }
  [[nodiscard]] int num_hosts() const noexcept {
    return num_leaves() * config_.hosts_per_leaf;
  }

  // Host addressing: global index i lives in slot (i % hosts_per_leaf) of
  // global leaf (i / hosts_per_leaf); leaves are pod-major.
  [[nodiscard]] net::Host& host(int i) { return *hosts_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] net::Host& host(int pod, int leaf, int slot);
  [[nodiscard]] net::Switch& leaf(int global_leaf) {
    return *leaves_.at(static_cast<std::size_t>(global_leaf));
  }
  [[nodiscard]] net::Switch& leaf(int pod, int l) {
    return leaf(pod * config_.leaves_per_pod + l);
  }
  [[nodiscard]] net::Switch& agg(int pod, int a);
  [[nodiscard]] net::Switch& spine(int s) {
    return *spines_.at(static_cast<std::size_t>(s));
  }
  [[nodiscard]] int leaf_of_host(int host) const noexcept {
    return host / config_.hosts_per_leaf;
  }
  [[nodiscard]] int pod_of_leaf(int global_leaf) const noexcept {
    return global_leaf / config_.leaves_per_pod;
  }

  // Every switch, for teardown checks (check_no_unrouted) and sweeps.
  [[nodiscard]] std::vector<net::Switch*> switches();

  // Every node (hosts, then leaves, aggs, spines — id order), for
  // DomainBridge::attach and whole-fabric walks.
  [[nodiscard]] std::vector<net::Node*> nodes();

  // The leaf egress queue feeding host i's downlink — the incast bottleneck
  // when i is a receiver.
  [[nodiscard]] net::DropTailQueue& downlink_queue(int host);
  // That link's LinkDirectory name, e.g. "p0.l1->p0.l1.h0" — the label
  // telemetry and fault profiles use to address the bottleneck hop.
  [[nodiscard]] std::string downlink_name(int host) const;

  // Uplink egress ports of one leaf, in spine/agg order (the ECMP group
  // member order). The parallel port indices align with the leaf switch's
  // ecmp_flows_by_port() histogram.
  [[nodiscard]] std::vector<net::Port*> leaf_uplink_ports(int global_leaf);
  [[nodiscard]] const std::vector<std::size_t>& leaf_uplink_port_indices(
      int global_leaf) const {
    return leaf_uplinks_.at(static_cast<std::size_t>(global_leaf));
  }

  // Link names of one leaf's uplinks, e.g. "p0.l1->s0" — vantage points for
  // leaf-tier telemetry.
  [[nodiscard]] std::vector<std::string> leaf_uplink_names(int global_leaf) const;

  // Link names of the spine-tier egress ports that carry traffic descending
  // toward `global_leaf` (spine->leaf in two-tier, spine->agg of the leaf's
  // pod in three-tier) — vantage points for spine-tier telemetry.
  [[nodiscard]] std::vector<std::string> spine_egress_names_toward(int global_leaf) const;

  // Host downlink oversubscription ratio at the leaf tier, e.g. 2.0 means
  // hosts can offer twice the uplink capacity.
  [[nodiscard]] double oversubscription() const noexcept;

  // Unloaded RTT between two hosts under different leaves for an MTU data
  // packet and its pure ACK (used to size experiment windows).
  [[nodiscard]] sim::Time base_rtt(std::int64_t data_bytes = 1500) const;

 private:
  FatTreeConfig config_;
  std::vector<std::unique_ptr<net::Host>> hosts_;
  std::vector<std::unique_ptr<net::Switch>> leaves_;
  std::vector<std::unique_ptr<net::Switch>> aggs_;    // pod-major
  std::vector<std::unique_ptr<net::Switch>> spines_;
  // Per global leaf: port index of each host downlink (slot order) and each
  // uplink (spine/agg order).
  std::vector<std::vector<std::size_t>> leaf_downlinks_;
  std::vector<std::vector<std::size_t>> leaf_uplinks_;
};

}  // namespace incast::fabric

#endif  // INCAST_FABRIC_FAT_TREE_H_
