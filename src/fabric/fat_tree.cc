#include "fabric/fat_tree.h"

#include <stdexcept>

#include "obs/flow_trace.h"

namespace incast::fabric {

std::string host_node_name(int pod, int leaf, int slot) {
  return leaf_node_name(pod, leaf) + ".h" + std::to_string(slot);
}

std::string leaf_node_name(int pod, int leaf) {
  return "p" + std::to_string(pod) + ".l" + std::to_string(leaf);
}

std::string agg_node_name(int pod, int agg) {
  return "p" + std::to_string(pod) + ".a" + std::to_string(agg);
}

std::string spine_node_name(int spine) { return "s" + std::to_string(spine); }

DomainAssignment assign_rack_domains(const FatTreeConfig& config, int domains) {
  if (domains < 1) {
    throw std::invalid_argument("assign_rack_domains: domains must be >= 1");
  }
  // Same shape validation as the FatTree ctor — this runs first when the
  // single-simulator ctor delegates, and the caller deserves the documented
  // std::invalid_argument, not a length_error from a negative resize.
  if (config.num_pods < 1 || config.leaves_per_pod < 1 || config.hosts_per_leaf < 1 ||
      config.num_spines < 1 || config.aggs_per_pod < 0) {
    throw std::invalid_argument(
        "FatTree: pods, leaves_per_pod, hosts_per_leaf and spines must be >= 1 "
        "and aggs_per_pod >= 0");
  }
  DomainAssignment da;
  da.domains = domains;
  const int leaves = config.num_pods * config.leaves_per_pod;
  const int aggs = config.num_pods * config.aggs_per_pod;
  da.leaf_domain.resize(static_cast<std::size_t>(leaves));
  da.agg_domain.resize(static_cast<std::size_t>(aggs));
  da.spine_domain.resize(static_cast<std::size_t>(config.num_spines));
  for (int gl = 0; gl < leaves; ++gl) {
    da.leaf_domain[static_cast<std::size_t>(gl)] = gl % domains;
  }
  for (int ga = 0; ga < aggs; ++ga) {
    da.agg_domain[static_cast<std::size_t>(ga)] = ga % domains;
  }
  for (int s = 0; s < config.num_spines; ++s) {
    da.spine_domain[static_cast<std::size_t>(s)] = s % domains;
  }
  // Every link that can cross domains (host links never do — racks are
  // atomic) shares the fabric's uniform propagation delay, so the
  // conservative lookahead is simply link_delay.
  da.lookahead = config.link_delay;
  return da;
}

FatTree::FatTree(sim::Simulator& sim, const FatTreeConfig& config)
    : FatTree{std::vector<sim::Simulator*>{&sim}, assign_rack_domains(config, 1),
              config} {}

FatTree::FatTree(const std::vector<sim::Simulator*>& sims,
                 const DomainAssignment& assignment, const FatTreeConfig& config)
    : config_{config} {
  if (config_.num_pods < 1 || config_.leaves_per_pod < 1 || config_.hosts_per_leaf < 1 ||
      config_.num_spines < 1 || config_.aggs_per_pod < 0) {
    throw std::invalid_argument(
        "FatTree: pods, leaves_per_pod, hosts_per_leaf and spines must be >= 1 "
        "and aggs_per_pod >= 0");
  }

  const int leaves = num_leaves();
  const int aggs = config_.num_pods * config_.aggs_per_pod;

  if (assignment.leaf_domain.size() != static_cast<std::size_t>(leaves) ||
      assignment.agg_domain.size() != static_cast<std::size_t>(aggs) ||
      assignment.spine_domain.size() != static_cast<std::size_t>(config_.num_spines)) {
    throw std::invalid_argument("FatTree: domain assignment shape mismatch");
  }
  const auto sim_of = [&sims](int domain) -> sim::Simulator& {
    if (domain < 0 || static_cast<std::size_t>(domain) >= sims.size() ||
        sims[static_cast<std::size_t>(domain)] == nullptr) {
      throw std::invalid_argument("FatTree: domain index out of range");
    }
    return *sims[static_cast<std::size_t>(domain)];
  };

  // Node ids: hosts first (so host ids match their global index), then
  // leaves, aggs, spines.
  net::NodeId next_id = 0;
  hosts_.reserve(static_cast<std::size_t>(num_hosts()));
  for (int p = 0; p < config_.num_pods; ++p) {
    for (int l = 0; l < config_.leaves_per_pod; ++l) {
      const int dom =
          assignment.leaf_domain[static_cast<std::size_t>(p * config_.leaves_per_pod + l)];
      for (int h = 0; h < config_.hosts_per_leaf; ++h) {
        hosts_.push_back(std::make_unique<net::Host>(sim_of(dom), next_id++,
                                                     host_node_name(p, l, h)));
        hosts_.back()->set_domain(dom);
      }
    }
  }
  leaves_.reserve(static_cast<std::size_t>(leaves));
  for (int p = 0; p < config_.num_pods; ++p) {
    for (int l = 0; l < config_.leaves_per_pod; ++l) {
      const int dom =
          assignment.leaf_domain[static_cast<std::size_t>(p * config_.leaves_per_pod + l)];
      leaves_.push_back(
          std::make_unique<net::Switch>(sim_of(dom), next_id++, leaf_node_name(p, l)));
      leaves_.back()->set_domain(dom);
    }
  }
  aggs_.reserve(static_cast<std::size_t>(aggs));
  for (int p = 0; p < config_.num_pods; ++p) {
    for (int a = 0; a < config_.aggs_per_pod; ++a) {
      const int dom =
          assignment.agg_domain[static_cast<std::size_t>(p * config_.aggs_per_pod + a)];
      aggs_.push_back(
          std::make_unique<net::Switch>(sim_of(dom), next_id++, agg_node_name(p, a)));
      aggs_.back()->set_domain(dom);
    }
  }
  spines_.reserve(static_cast<std::size_t>(config_.num_spines));
  for (int s = 0; s < config_.num_spines; ++s) {
    const int dom = assignment.spine_domain[static_cast<std::size_t>(s)];
    spines_.push_back(
        std::make_unique<net::Switch>(sim_of(dom), next_id++, spine_node_name(s)));
    spines_.back()->set_domain(dom);
  }

  // Host <-> leaf downlinks.
  leaf_downlinks_.resize(static_cast<std::size_t>(leaves));
  leaf_uplinks_.resize(static_cast<std::size_t>(leaves));
  for (int gl = 0; gl < leaves; ++gl) {
    net::Switch& lf = leaf(gl);
    for (int h = 0; h < config_.hosts_per_leaf; ++h) {
      net::Host& host_ref = host(gl * config_.hosts_per_leaf + h);
      host_ref.add_nic(config_.host_link, config_.link_delay, config_.host_queue);
      const std::size_t tor_port =
          lf.add_port(config_.host_link, config_.link_delay, config_.switch_queue);
      net::connect_duplex(host_ref, 0, lf, tor_port);
      register_duplex(host_ref, 0, lf, tor_port);
      lf.set_route(host_ref.id(), tor_port);
      leaf_downlinks_[static_cast<std::size_t>(gl)].push_back(tor_port);
    }
  }

  // Uplink tiers. Member order inside every ECMP group follows the peer
  // switch index, so all leaves (and all spines) agree on member ordering —
  // the precondition for symmetric flow/ACK choices.
  // spine_down[s][gl]: spine s's port toward leaf gl (two-tier).
  std::vector<std::vector<std::size_t>> spine_down;
  // agg_down[ga][l]: agg's port toward in-pod leaf l; agg_up[ga]: spine ports.
  std::vector<std::vector<std::size_t>> agg_down;
  std::vector<std::vector<std::size_t>> agg_up;
  // spine_to_agg[s][ga]: spine s's port toward agg ga (three-tier).
  std::vector<std::vector<std::size_t>> spine_to_agg;

  if (!three_tier()) {
    spine_down.assign(static_cast<std::size_t>(config_.num_spines), {});
    for (int gl = 0; gl < leaves; ++gl) {
      for (int s = 0; s < config_.num_spines; ++s) {
        const std::size_t lp =
            leaf(gl).add_port(config_.leaf_uplink, config_.link_delay, config_.switch_queue);
        const std::size_t sp =
            spine(s).add_port(config_.leaf_uplink, config_.link_delay, config_.switch_queue);
        net::connect_duplex(leaf(gl), lp, spine(s), sp);
        register_duplex(leaf(gl), lp, spine(s), sp);
        leaf_uplinks_[static_cast<std::size_t>(gl)].push_back(lp);
        spine_down[static_cast<std::size_t>(s)].push_back(sp);
      }
    }
  } else {
    agg_down.assign(static_cast<std::size_t>(aggs), {});
    agg_up.assign(static_cast<std::size_t>(aggs), {});
    spine_to_agg.assign(static_cast<std::size_t>(config_.num_spines), {});
    for (int p = 0; p < config_.num_pods; ++p) {
      for (int l = 0; l < config_.leaves_per_pod; ++l) {
        const int gl = p * config_.leaves_per_pod + l;
        for (int a = 0; a < config_.aggs_per_pod; ++a) {
          const int ga = p * config_.aggs_per_pod + a;
          net::Switch& ag = agg(p, a);
          const std::size_t lp = leaf(gl).add_port(config_.leaf_uplink, config_.link_delay,
                                                   config_.switch_queue);
          const std::size_t ap =
              ag.add_port(config_.leaf_uplink, config_.link_delay, config_.switch_queue);
          net::connect_duplex(leaf(gl), lp, ag, ap);
          register_duplex(leaf(gl), lp, ag, ap);
          leaf_uplinks_[static_cast<std::size_t>(gl)].push_back(lp);
          agg_down[static_cast<std::size_t>(ga)].push_back(ap);
        }
      }
      for (int a = 0; a < config_.aggs_per_pod; ++a) {
        const int ga = p * config_.aggs_per_pod + a;
        net::Switch& ag = agg(p, a);
        for (int s = 0; s < config_.num_spines; ++s) {
          const std::size_t up =
              ag.add_port(config_.spine_link, config_.link_delay, config_.switch_queue);
          const std::size_t sp =
              spine(s).add_port(config_.spine_link, config_.link_delay, config_.switch_queue);
          net::connect_duplex(ag, up, spine(s), sp);
          register_duplex(ag, up, spine(s), sp);
          agg_up[static_cast<std::size_t>(ga)].push_back(up);
          spine_to_agg[static_cast<std::size_t>(s)].push_back(sp);
        }
      }
    }
  }

  // Routes: up via ECMP over uplinks, down deterministically by destination
  // (except the spine's descent into a multi-agg pod, also ECMP).
  for (int hid = 0; hid < num_hosts(); ++hid) {
    const net::NodeId dst = host(hid).id();
    const int gl = leaf_of_host(hid);
    const int p = pod_of_leaf(gl);
    const int l = gl % config_.leaves_per_pod;
    for (int other = 0; other < leaves; ++other) {
      if (other == gl) continue;  // local downlink route already set
      leaf(other).set_ecmp_route(dst, leaf_uplinks_[static_cast<std::size_t>(other)]);
    }
    if (!three_tier()) {
      for (int s = 0; s < config_.num_spines; ++s) {
        spine(s).set_route(dst, spine_down[static_cast<std::size_t>(s)]
                                          [static_cast<std::size_t>(gl)]);
      }
    } else {
      for (int ap = 0; ap < config_.num_pods; ++ap) {
        for (int a = 0; a < config_.aggs_per_pod; ++a) {
          const int ga = ap * config_.aggs_per_pod + a;
          if (ap == p) {
            agg(ap, a).set_route(dst, agg_down[static_cast<std::size_t>(ga)]
                                              [static_cast<std::size_t>(l)]);
          } else {
            agg(ap, a).set_ecmp_route(dst, agg_up[static_cast<std::size_t>(ga)]);
          }
        }
      }
      for (int s = 0; s < config_.num_spines; ++s) {
        // Descend into pod p through any of its aggs, in agg order.
        std::vector<std::size_t> group;
        group.reserve(static_cast<std::size_t>(config_.aggs_per_pod));
        for (int a = 0; a < config_.aggs_per_pod; ++a) {
          const int ga = p * config_.aggs_per_pod + a;
          group.push_back(spine_to_agg[static_cast<std::size_t>(s)]
                                      [static_cast<std::size_t>(ga)]);
        }
        spine(s).set_ecmp_route(dst, std::move(group));
      }
    }
  }

  for (net::Switch* sw : switches()) {
    sw->set_ecmp_seed(config_.ecmp_seed);
    for (std::size_t i = 0; i < sw->num_ports(); ++i) {
      sw->port(i).set_int_stamping(true);
    }
  }

  // Tier tags for the flow tracer's per-tier queueing attribution.
  const auto tag_tier = [](net::Node& node, obs::HopTier tier) {
    for (std::size_t i = 0; i < node.num_ports(); ++i) {
      node.port(i).set_trace_tier(tier);
    }
  };
  for (auto& h : hosts_) tag_tier(*h, obs::HopTier::kHost);
  for (auto& lf : leaves_) tag_tier(*lf, obs::HopTier::kTor);
  for (auto& ag : aggs_) tag_tier(*ag, obs::HopTier::kAgg);
  for (auto& sp : spines_) tag_tier(*sp, obs::HopTier::kSpine);
  if (config_.shared_buffer.has_value()) {
    for (auto& lf : leaves_) lf->enable_shared_buffer(*config_.shared_buffer);
  }
  if (config_.pfc.has_value()) {
    for (net::Switch* sw : switches()) sw->enable_pfc(*config_.pfc);
  }
}

net::Host& FatTree::host(int pod, int leaf_index, int slot) {
  return host((pod * config_.leaves_per_pod + leaf_index) * config_.hosts_per_leaf + slot);
}

net::Switch& FatTree::agg(int pod, int a) {
  return *aggs_.at(static_cast<std::size_t>(pod * config_.aggs_per_pod + a));
}

std::vector<net::Node*> FatTree::nodes() {
  std::vector<net::Node*> out;
  out.reserve(hosts_.size() + leaves_.size() + aggs_.size() + spines_.size());
  for (auto& h : hosts_) out.push_back(h.get());
  for (auto& sw : leaves_) out.push_back(sw.get());
  for (auto& sw : aggs_) out.push_back(sw.get());
  for (auto& sw : spines_) out.push_back(sw.get());
  return out;
}

std::vector<net::Switch*> FatTree::switches() {
  std::vector<net::Switch*> out;
  out.reserve(leaves_.size() + aggs_.size() + spines_.size());
  for (auto& sw : leaves_) out.push_back(sw.get());
  for (auto& sw : aggs_) out.push_back(sw.get());
  for (auto& sw : spines_) out.push_back(sw.get());
  return out;
}

net::DropTailQueue& FatTree::downlink_queue(int host_index) {
  const int gl = leaf_of_host(host_index);
  const std::size_t port = leaf_downlinks_.at(static_cast<std::size_t>(gl))
                               .at(static_cast<std::size_t>(host_index % config_.hosts_per_leaf));
  return leaf(gl).port(port).queue();
}

std::string FatTree::downlink_name(int host_index) const {
  const int gl = leaf_of_host(host_index);
  const int p = pod_of_leaf(gl);
  const int l = gl % config_.leaves_per_pod;
  const int slot = host_index % config_.hosts_per_leaf;
  return leaf_node_name(p, l) + "->" + host_node_name(p, l, slot);
}

std::vector<net::Port*> FatTree::leaf_uplink_ports(int global_leaf) {
  std::vector<net::Port*> out;
  for (const std::size_t idx : leaf_uplink_port_indices(global_leaf)) {
    out.push_back(&leaf(global_leaf).port(idx));
  }
  return out;
}

std::vector<std::string> FatTree::leaf_uplink_names(int global_leaf) const {
  const int p = pod_of_leaf(global_leaf);
  const int l = global_leaf % config_.leaves_per_pod;
  const std::string from = leaf_node_name(p, l);
  std::vector<std::string> out;
  if (!three_tier()) {
    for (int s = 0; s < config_.num_spines; ++s) {
      out.push_back(from + "->" + spine_node_name(s));
    }
  } else {
    for (int a = 0; a < config_.aggs_per_pod; ++a) {
      out.push_back(from + "->" + agg_node_name(p, a));
    }
  }
  return out;
}

std::vector<std::string> FatTree::spine_egress_names_toward(int global_leaf) const {
  const int p = pod_of_leaf(global_leaf);
  const int l = global_leaf % config_.leaves_per_pod;
  std::vector<std::string> out;
  for (int s = 0; s < config_.num_spines; ++s) {
    if (!three_tier()) {
      out.push_back(spine_node_name(s) + "->" + leaf_node_name(p, l));
    } else {
      for (int a = 0; a < config_.aggs_per_pod; ++a) {
        out.push_back(spine_node_name(s) + "->" + agg_node_name(p, a));
      }
    }
  }
  return out;
}

double FatTree::oversubscription() const noexcept {
  const int uplinks = three_tier() ? config_.aggs_per_pod : config_.num_spines;
  const double offered = static_cast<double>(config_.hosts_per_leaf) *
                         static_cast<double>(config_.host_link.bps());
  const double capacity = static_cast<double>(uplinks) *
                          static_cast<double>(config_.leaf_uplink.bps());
  return offered / capacity;
}

sim::Time FatTree::base_rtt(std::int64_t data_bytes) const {
  const std::int64_t ack_bytes = net::kHeaderBytes;
  // Worst-case up/down path between hosts under different leaves: 4 links
  // each way in the two-tier fabric, 6 in the three-tier.
  const int hops = three_tier() ? 6 : 4;
  sim::Time data_ser = config_.host_link.serialization_time(data_bytes) * 2;
  sim::Time ack_ser = config_.host_link.serialization_time(ack_bytes) * 2;
  if (!three_tier()) {
    data_ser = data_ser + config_.leaf_uplink.serialization_time(data_bytes) * 2;
    ack_ser = ack_ser + config_.leaf_uplink.serialization_time(ack_bytes) * 2;
  } else {
    data_ser = data_ser + config_.leaf_uplink.serialization_time(data_bytes) * 2 +
               config_.spine_link.serialization_time(data_bytes) * 2;
    ack_ser = ack_ser + config_.leaf_uplink.serialization_time(ack_bytes) * 2 +
              config_.spine_link.serialization_time(ack_bytes) * 2;
  }
  return config_.link_delay * (2 * hops) + data_ser + ack_ser;
}

}  // namespace incast::fabric
