// Anomaly flight recorder: a ring of the most recent trace events that is
// dumped when a trigger fires, giving a microscopic post-hoc view of the
// moments leading up to an anomaly without recording a whole run.
//
// Triggers (parse_trigger() grammar, used by the --flight-recorder flag):
//   rto-storm[:N[:window_ms]]   N "rto" instants within the window
//                               (default 10 within 10 ms)
//   queue-collapse[:packets]    watched queue depth reaches the threshold
//                               (default 1200 packets ~= 90% of the 1333-pkt
//                               bottleneck queue)
//   mode-shift                  experiment classified its goodput mode as
//                               degenerate or collapse
//
// "Exactly once per anomaly": each trigger latches when it fires and
// re-arms only after the condition clears — the RTO storm re-arms when the
// sliding window empties, queue collapse re-arms below half the threshold
// (hysteresis) — so one sustained anomaly produces one dump, and a second
// distinct anomaly produces a second dump.
#ifndef INCAST_OBS_FLIGHT_RECORDER_H_
#define INCAST_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "sim/time.h"

namespace incast::obs {

struct TriggerConfig {
  enum class Kind : std::uint8_t { kNone = 0, kRtoStorm, kQueueCollapse, kModeShift };

  Kind kind{Kind::kNone};
  // kRtoStorm: fire when rto_threshold "rto" instants land within rto_window.
  int rto_threshold{10};
  sim::Time rto_window{sim::Time::milliseconds(10)};
  // kQueueCollapse: fire when an observed queue depth reaches this.
  std::int64_t queue_threshold_packets{1200};
};

[[nodiscard]] const char* to_string(TriggerConfig::Kind kind) noexcept;

// Parses the --flight-recorder trigger spec; nullopt on a malformed spec.
[[nodiscard]] std::optional<TriggerConfig> parse_trigger(const std::string& spec);

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void arm(const TriggerConfig& trigger);
  [[nodiscard]] bool armed() const noexcept {
    return trigger_.kind != TriggerConfig::Kind::kNone;
  }
  [[nodiscard]] const TriggerConfig& trigger() const noexcept { return trigger_; }

  // Invoked on every firing with the trigger reason and the ring contents
  // (oldest first, ending with a "trigger: <reason>" instant). The CLI
  // installs a sink that writes a Chrome-trace JSON file; tests install
  // their own.
  using DumpSink =
      std::function<void(const std::string& reason, const std::vector<TraceEvent>& ring)>;
  void set_dump_sink(DumpSink sink) { sink_ = std::move(sink); }

  // Feeds: every trace event enters the ring; "rto" instants additionally
  // drive the RTO-storm trigger.
  void on_event(const TraceEvent& ev);
  // Queue monitors report sampled/watermark depths here (kQueueCollapse).
  void observe_queue_depth(std::int64_t ts_ns, std::int64_t packets);
  // Experiments report a goodput-mode classification change (kModeShift).
  void notify_mode_shift(std::int64_t ts_ns, const std::string& from, const std::string& to);

  // Unconditionally dumps the ring with the given reason, bypassing trigger
  // arming and latching. The run-hardening layer routes audit-invariant
  // violations here so a strict abort ships a structured diagnostic of the
  // moments leading up to it.
  void force_dump(std::int64_t ts_ns, const std::string& reason);

  [[nodiscard]] int dumps() const noexcept { return dumps_; }
  [[nodiscard]] const std::string& last_reason() const noexcept { return last_reason_; }
  // Ring contents captured at the last firing (oldest first).
  [[nodiscard]] const std::vector<TraceEvent>& last_dump() const noexcept {
    return last_dump_;
  }
  // Current ring contents, oldest first.
  [[nodiscard]] std::vector<TraceEvent> ring_snapshot() const;

 private:
  void push(TraceEvent ev);
  void fire(std::int64_t ts_ns, const std::string& reason);

  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t head_{0};  // next overwrite position once the ring is full

  TriggerConfig trigger_;
  DumpSink sink_;

  // RTO-storm sliding window (timestamps of recent "rto" instants) and the
  // fired-latch for each trigger kind.
  std::deque<std::int64_t> rto_times_;
  bool storm_active_{false};
  bool collapse_active_{false};

  int dumps_{0};
  std::string last_reason_;
  std::vector<TraceEvent> last_dump_;
};

}  // namespace incast::obs

#endif  // INCAST_OBS_FLIGHT_RECORDER_H_
