#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace incast::obs {

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_{std::move(upper_bounds)} {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("histogram bounds must be sorted ascending");
  }
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::record(double value) {
  std::size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  ++buckets_[i];
  ++count_;
  sum_ += value;
}

void MetricsRegistry::check_name(const std::string& name) const {
  if (name.empty()) {
    throw std::invalid_argument("metric name must not be empty");
  }
  for (const char ch : name) {
    if (ch == '"' || ch == '\\' || static_cast<unsigned char>(ch) <= ' ') {
      throw std::invalid_argument("metric name contains invalid character: " + name);
    }
  }
  if (metrics_.count(name) != 0) {
    throw std::invalid_argument("metric name already registered: " + name);
  }
}

void MetricsRegistry::register_counter(std::string name, IntSource source) {
  check_name(name);
  Metric m;
  m.kind = 'c';
  m.counter = std::move(source);
  metrics_.emplace(std::move(name), std::move(m));
}

void MetricsRegistry::register_gauge(std::string name, DoubleSource source) {
  check_name(name);
  Metric m;
  m.kind = 'g';
  m.gauge = std::move(source);
  metrics_.emplace(std::move(name), std::move(m));
}

Histogram& MetricsRegistry::register_histogram(std::string name,
                                               std::vector<double> upper_bounds) {
  check_name(name);
  Metric m;
  m.kind = 'h';
  m.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  Histogram& ref = *m.histogram;
  metrics_.emplace(std::move(name), std::move(m));
  return ref;
}

void MetricsRegistry::unregister(const std::string& name) { metrics_.erase(name); }

std::size_t MetricsRegistry::unregister_prefix(const std::string& prefix) {
  std::size_t removed = 0;
  auto it = metrics_.lower_bound(prefix);
  while (it != metrics_.end() && it->first.compare(0, prefix.size(), prefix) == 0) {
    it = metrics_.erase(it);
    ++removed;
  }
  return removed;
}

bool MetricsRegistry::contains(const std::string& name) const {
  return metrics_.count(name) != 0;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot(std::int64_t at_ns) const {
  Snapshot snap;
  snap.at_ns = at_ns;
  snap.entries.reserve(metrics_.size());
  for (const auto& [name, metric] : metrics_) {
    Snapshot::Entry e;
    e.name = name;
    e.kind = metric.kind;
    switch (metric.kind) {
      case 'c': e.counter = metric.counter(); break;
      case 'g': e.gauge = metric.gauge(); break;
      case 'h':
        e.hist_count = metric.histogram->count();
        e.hist_sum = metric.histogram->sum();
        e.hist_bounds = metric.histogram->bounds();
        e.hist_buckets = metric.histogram->bucket_counts();
        break;
    }
    snap.entries.push_back(std::move(e));
  }
  return snap;
}

namespace {

// Deterministic double rendering for the JSON export.
void write_double(std::ostream& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out << buf;
}

}  // namespace

void MetricsRegistry::Snapshot::write_json(std::ostream& out) const {
  out << "{\n  \"at_ns\": " << at_ns << ",\n  \"metrics\": {";
  bool first = true;
  for (const Entry& e : entries) {
    if (!first) out << ",";
    first = false;
    out << "\n    \"" << e.name << "\": ";
    switch (e.kind) {
      case 'c':
        out << e.counter;
        break;
      case 'g':
        write_double(out, e.gauge);
        break;
      case 'h': {
        out << "{\"count\": " << e.hist_count << ", \"sum\": ";
        write_double(out, e.hist_sum);
        out << ", \"bounds\": [";
        for (std::size_t i = 0; i < e.hist_bounds.size(); ++i) {
          if (i != 0) out << ", ";
          write_double(out, e.hist_bounds[i]);
        }
        out << "], \"buckets\": [";
        for (std::size_t i = 0; i < e.hist_buckets.size(); ++i) {
          if (i != 0) out << ", ";
          out << e.hist_buckets[i];
        }
        out << "]}";
        break;
      }
    }
  }
  out << "\n  }\n}\n";
}

std::string MetricsRegistry::Snapshot::to_json() const {
  std::ostringstream oss;
  write_json(oss);
  return oss.str();
}

}  // namespace incast::obs
