#include "obs/flight_recorder.h"

#include <utility>

namespace incast::obs {

const char* to_string(TriggerConfig::Kind kind) noexcept {
  switch (kind) {
    case TriggerConfig::Kind::kNone: return "none";
    case TriggerConfig::Kind::kRtoStorm: return "rto-storm";
    case TriggerConfig::Kind::kQueueCollapse: return "queue-collapse";
    case TriggerConfig::Kind::kModeShift: return "mode-shift";
  }
  return "?";
}

std::optional<TriggerConfig> parse_trigger(const std::string& spec) {
  // Split on ':' into name[:arg1[:arg2]].
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = spec.find(':', start);
    if (colon == std::string::npos) {
      parts.push_back(spec.substr(start));
      break;
    }
    parts.push_back(spec.substr(start, colon - start));
    start = colon + 1;
  }

  auto parse_positive = [](const std::string& s) -> std::optional<long long> {
    if (s.empty()) return std::nullopt;
    long long v = 0;
    for (const char ch : s) {
      if (ch < '0' || ch > '9') return std::nullopt;
      v = v * 10 + (ch - '0');
      if (v > 1'000'000'000LL) return std::nullopt;
    }
    if (v <= 0) return std::nullopt;
    return v;
  };

  TriggerConfig cfg;
  if (parts[0] == "rto-storm") {
    cfg.kind = TriggerConfig::Kind::kRtoStorm;
    if (parts.size() > 3) return std::nullopt;
    if (parts.size() >= 2) {
      const auto n = parse_positive(parts[1]);
      if (!n) return std::nullopt;
      cfg.rto_threshold = static_cast<int>(*n);
    }
    if (parts.size() == 3) {
      const auto ms = parse_positive(parts[2]);
      if (!ms) return std::nullopt;
      cfg.rto_window = sim::Time::milliseconds(*ms);
    }
  } else if (parts[0] == "queue-collapse") {
    cfg.kind = TriggerConfig::Kind::kQueueCollapse;
    if (parts.size() > 2) return std::nullopt;
    if (parts.size() == 2) {
      const auto pkts = parse_positive(parts[1]);
      if (!pkts) return std::nullopt;
      cfg.queue_threshold_packets = *pkts;
    }
  } else if (parts[0] == "mode-shift") {
    if (parts.size() != 1) return std::nullopt;
    cfg.kind = TriggerConfig::Kind::kModeShift;
  } else {
    return std::nullopt;
  }
  return cfg;
}

FlightRecorder::FlightRecorder(std::size_t capacity) : capacity_{capacity} {
  ring_.reserve(capacity_);
}

void FlightRecorder::arm(const TriggerConfig& trigger) {
  trigger_ = trigger;
  rto_times_.clear();
  storm_active_ = false;
  collapse_active_ = false;
}

std::vector<TraceEvent> FlightRecorder::ring_snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = head_; i < ring_.size(); ++i) out.push_back(ring_[i]);
  for (std::size_t i = 0; i < head_; ++i) out.push_back(ring_[i]);
  return out;
}

void FlightRecorder::push(TraceEvent ev) {
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
  } else {
    ring_[head_] = std::move(ev);
    head_ = (head_ + 1) % capacity_;
  }
}

void FlightRecorder::fire(std::int64_t ts_ns, const std::string& reason) {
  TraceEvent marker;
  marker.ts_ns = ts_ns;
  marker.phase = TraceEvent::Phase::kInstant;
  marker.category = TraceCategory::kSim;
  marker.tid = kWorkloadTid;
  marker.name = "trigger: " + reason;
  push(std::move(marker));

  ++dumps_;
  last_reason_ = reason;
  last_dump_ = ring_snapshot();
  if (sink_) sink_(reason, last_dump_);
}

void FlightRecorder::on_event(const TraceEvent& ev) {
  if (!armed()) return;
  const std::int64_t ts = ev.ts_ns;
  const bool is_rto =
      ev.phase == TraceEvent::Phase::kInstant && ev.name == "rto";
  push(ev);

  if (trigger_.kind == TriggerConfig::Kind::kRtoStorm && is_rto) {
    const std::int64_t window_ns = trigger_.rto_window.ns();
    while (!rto_times_.empty() && rto_times_.front() <= ts - window_ns) {
      rto_times_.pop_front();
    }
    // The storm latch releases once the window has fully drained of the
    // RTOs that fired it — the anomaly is over; a new burst of RTOs is a
    // new anomaly.
    if (storm_active_ && rto_times_.empty()) storm_active_ = false;
    rto_times_.push_back(ts);
    if (!storm_active_ && static_cast<int>(rto_times_.size()) >= trigger_.rto_threshold) {
      storm_active_ = true;
      fire(ts, "rto-storm");
    }
  }
}

void FlightRecorder::observe_queue_depth(std::int64_t ts_ns, std::int64_t packets) {
  if (trigger_.kind != TriggerConfig::Kind::kQueueCollapse) return;
  if (!collapse_active_ && packets >= trigger_.queue_threshold_packets) {
    collapse_active_ = true;
    fire(ts_ns, "queue-collapse");
  } else if (collapse_active_ && packets < trigger_.queue_threshold_packets / 2) {
    // Hysteresis: re-arm only once the queue has genuinely drained, so one
    // sustained standing queue cannot fire on every sample.
    collapse_active_ = false;
  }
}

void FlightRecorder::notify_mode_shift(std::int64_t ts_ns, const std::string& from,
                                       const std::string& to) {
  if (trigger_.kind != TriggerConfig::Kind::kModeShift) return;
  fire(ts_ns, "mode-shift:" + from + "->" + to);
}

void FlightRecorder::force_dump(std::int64_t ts_ns, const std::string& reason) {
  fire(ts_ns, reason);
}

}  // namespace incast::obs
