// Hub: the one observability object a run carries.
//
// Bundles the metrics registry, the event tracer and the flight recorder,
// and is what components discover through sim::Simulator::hub(). A run with
// no observability requested never constructs a Hub at all — the simulator's
// hub pointer stays nullptr and every instrumented component takes a
// single-branch fast path (see INCAST_OBS_HUB below for the compile-time
// version of the same guarantee).
//
// Layered switches, outermost first:
//   1. compile time: -DINCAST_OBS_ENABLED=0 turns INCAST_OBS_HUB() into a
//      constant nullptr, so instrumentation dead-code-eliminates entirely;
//   2. no hub attached (the default): components cache nullptr and skip;
//   3. Hub::set_enabled(false): runtime master switch, everything no-ops;
//   4. per-facility: tracer().set_enabled() / recorder().arm().
#ifndef INCAST_OBS_HUB_H_
#define INCAST_OBS_HUB_H_

#include <cstdint>
#include <string>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

// Compile-time master switch. Build with -DINCAST_OBS_ENABLED=0 (cmake
// -DINCAST_OBS=OFF) to compile all instrumentation out of the hot paths.
#ifndef INCAST_OBS_ENABLED
#define INCAST_OBS_ENABLED 1
#endif

#if INCAST_OBS_ENABLED
#define INCAST_OBS_HUB(sim) ((sim).hub())
#else
#define INCAST_OBS_HUB(sim) (static_cast<::incast::obs::Hub*>(nullptr))
#endif

namespace incast::obs {

class Hub {
 public:
  Hub() = default;
  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;

  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] Tracer& tracer() noexcept { return tracer_; }
  [[nodiscard]] const Tracer& tracer() const noexcept { return tracer_; }
  [[nodiscard]] FlightRecorder& recorder() noexcept { return recorder_; }

  // Runtime master switch; overrides the per-facility switches below it.
  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  // True when components should construct and emit trace events: the hub is
  // enabled and either the tracer records or the flight recorder is armed.
  [[nodiscard]] bool tracing() const noexcept {
    return enabled_ && (tracer_.enabled() || recorder_.armed());
  }

  void set_thread_name(std::uint32_t tid, std::string name) {
    if (enabled_) tracer_.set_thread_name(tid, std::move(name));
  }

  // Routes an event to the tracer and, when armed, the flight recorder.
  void emit(TraceEvent ev) {
    if (!enabled_) return;
    recorder_.on_event(ev);
    tracer_.record(std::move(ev));
  }

  // Convenience emitters. All are cheap no-ops unless tracing() is true —
  // but callers on per-packet paths should still check tracing() first to
  // avoid building name strings for nothing.
  void instant(std::int64_t ts_ns, TraceCategory cat, std::string name, std::uint32_t tid,
               const char* k1 = nullptr, std::int64_t v1 = 0, const char* k2 = nullptr,
               std::int64_t v2 = 0) {
    if (!tracing()) return;
    emit(TraceEvent{ts_ns, TraceEvent::Phase::kInstant, cat, tid, 0, std::move(name),
                    k1, v1, k2, v2});
  }
  void counter(std::int64_t ts_ns, TraceCategory cat, std::string name, std::uint32_t tid,
               std::int64_t value) {
    if (!tracing()) return;
    emit(TraceEvent{ts_ns, TraceEvent::Phase::kCounter, cat, tid, 0, std::move(name),
                    "value", value, nullptr, 0});
  }
  void begin(std::int64_t ts_ns, TraceCategory cat, std::string name, std::uint32_t tid,
             const char* k1 = nullptr, std::int64_t v1 = 0) {
    if (!tracing()) return;
    emit(TraceEvent{ts_ns, TraceEvent::Phase::kBegin, cat, tid, 0, std::move(name),
                    k1, v1, nullptr, 0});
  }
  void end(std::int64_t ts_ns, TraceCategory cat, std::string name, std::uint32_t tid) {
    if (!tracing()) return;
    emit(TraceEvent{ts_ns, TraceEvent::Phase::kEnd, cat, tid, 0, std::move(name),
                    nullptr, 0, nullptr, 0});
  }
  void async_begin(std::int64_t ts_ns, TraceCategory cat, std::string name,
                   std::uint32_t tid, std::uint64_t id, const char* k1 = nullptr,
                   std::int64_t v1 = 0) {
    if (!tracing()) return;
    emit(TraceEvent{ts_ns, TraceEvent::Phase::kAsyncBegin, cat, tid, id, std::move(name),
                    k1, v1, nullptr, 0});
  }
  void async_end(std::int64_t ts_ns, TraceCategory cat, std::string name,
                 std::uint32_t tid, std::uint64_t id) {
    if (!tracing()) return;
    emit(TraceEvent{ts_ns, TraceEvent::Phase::kAsyncEnd, cat, tid, id, std::move(name),
                    nullptr, 0, nullptr, 0});
  }

  // Queue monitors feed depths here: the flight recorder evaluates its
  // collapse trigger even when the tracer itself is off.
  void observe_queue_depth(std::int64_t ts_ns, std::int64_t packets) {
    if (enabled_) recorder_.observe_queue_depth(ts_ns, packets);
  }

  // Experiments report goodput-mode classification changes.
  void notify_mode_shift(std::int64_t ts_ns, const std::string& from, const std::string& to);

  // Snapshots the registry (typically at end of the traced run, before
  // components unregister their sources in their destructors).
  void capture_metrics(std::int64_t at_ns);
  [[nodiscard]] bool has_final_metrics() const noexcept { return has_final_metrics_; }
  [[nodiscard]] const MetricsRegistry::Snapshot& final_metrics() const noexcept {
    return final_metrics_;
  }

  // Full-trace export (tracer buffer + thread names).
  void write_trace(std::ostream& out) const { tracer_.write_chrome_trace(out); }
  // Flight-recorder ring export in the same format.
  void write_dump(const std::vector<TraceEvent>& ring, std::ostream& out) const {
    obs::write_chrome_trace(ring, tracer_.thread_names(), 0, out);
  }

 private:
  bool enabled_{true};
  MetricsRegistry metrics_;
  Tracer tracer_;
  FlightRecorder recorder_;
  bool has_final_metrics_{false};
  MetricsRegistry::Snapshot final_metrics_;
};

}  // namespace incast::obs

#endif  // INCAST_OBS_HUB_H_
