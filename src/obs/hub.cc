#include "obs/hub.h"

namespace incast::obs {

void Hub::notify_mode_shift(std::int64_t ts_ns, const std::string& from,
                            const std::string& to) {
  if (!enabled_) return;
  if (tracing()) {
    TraceEvent ev;
    ev.ts_ns = ts_ns;
    ev.phase = TraceEvent::Phase::kInstant;
    ev.category = TraceCategory::kSim;
    ev.tid = kWorkloadTid;
    ev.name = "mode-shift:" + from + "->" + to;
    tracer_.record(ev);
  }
  recorder_.notify_mode_shift(ts_ns, from, to);
}

void Hub::capture_metrics(std::int64_t at_ns) {
  if (!enabled_) return;
  final_metrics_ = metrics_.snapshot(at_ns);
  has_final_metrics_ = true;
}

}  // namespace incast::obs
