// Structured event tracer with Chrome trace-event JSON export.
//
// Components emit TraceEvents (spans, instants, counters) into a bounded
// in-memory buffer; Tracer::write_chrome_trace() serializes them in the
// Trace Event Format that chrome://tracing and Perfetto load directly.
//
// Determinism contract: timestamps are simulation nanoseconds only — no
// wall-clock value ever enters a TraceEvent — and events are stored in
// emission order, so a trace is byte-identical across runs and across
// --jobs levels (the hub is attached to exactly one sweep task).
//
// Once the buffer fills, ALL subsequent events are dropped (and counted)
// rather than evicting old ones: the recorded prefix then stays internally
// consistent (no orphaned span ends), and write_chrome_trace() synthesizes
// closing events for spans still open at the cut so the export always
// balances.
#ifndef INCAST_OBS_TRACE_H_
#define INCAST_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace incast::obs {

// Trace categories ("cat" in the JSON); independent of sim::EventCategory —
// these classify what an event describes, not which timer fired it.
enum class TraceCategory : std::uint8_t {
  kSim = 0,
  kNet,
  kTcp,
  kQueue,
  kWorkload,
  kFault,
};

[[nodiscard]] constexpr const char* to_string(TraceCategory c) noexcept {
  switch (c) {
    case TraceCategory::kSim: return "sim";
    case TraceCategory::kNet: return "net";
    case TraceCategory::kTcp: return "tcp";
    case TraceCategory::kQueue: return "queue";
    case TraceCategory::kWorkload: return "workload";
    case TraceCategory::kFault: return "fault";
  }
  return "?";
}

// Virtual-thread ("track") ids. Flows get kFlowTidBase + flow_id so each
// flow renders as its own lane in Perfetto.
inline constexpr std::uint32_t kWorkloadTid = 0;
inline constexpr std::uint32_t kQueueTid = 1;
inline constexpr std::uint32_t kFaultTid = 2;
inline constexpr std::uint32_t kFlowTidBase = 1000;

struct TraceEvent {
  // Chrome trace-event phases we emit: B/E sync span begin/end (per tid),
  // b/e async span begin/end (matched by (cat, name, id) — used for bursts,
  // which overlap under kFixedPeriod scheduling), i instant, C counter.
  enum class Phase : char {
    kBegin = 'B',
    kEnd = 'E',
    kAsyncBegin = 'b',
    kAsyncEnd = 'e',
    kInstant = 'i',
    kCounter = 'C',
  };

  std::int64_t ts_ns{0};
  Phase phase{Phase::kInstant};
  TraceCategory category{TraceCategory::kSim};
  std::uint32_t tid{0};
  std::uint64_t id{0};  // async span correlation id
  std::string name;
  // Up to two integer args; key pointers must outlive the tracer (string
  // literals in practice).
  const char* arg1_key{nullptr};
  std::int64_t arg1_value{0};
  const char* arg2_key{nullptr};
  std::int64_t arg2_value{0};
};

// Serializes events as a Chrome trace-event JSON object. Walks the events,
// tracking open B/E stacks per tid and open async (cat, name, id) spans,
// and appends synthesized closers at the final timestamp so every B has an
// E and every b an e. `thread_names` become "thread_name" metadata events;
// `dropped` is recorded in otherData. Output is deterministic: fixed-format
// timestamps ("%.3f" microseconds), sorted metadata, emission-ordered
// events.
void write_chrome_trace(const std::vector<TraceEvent>& events,
                        const std::map<std::uint32_t, std::string>& thread_names,
                        std::uint64_t dropped, std::ostream& out);

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 18;  // 262144 events

  explicit Tracer(std::size_t capacity = kDefaultCapacity);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  // Names a virtual thread for the Perfetto track list.
  void set_thread_name(std::uint32_t tid, std::string name);
  [[nodiscard]] const std::map<std::uint32_t, std::string>& thread_names() const noexcept {
    return thread_names_;
  }

  // Appends an event; drops (and counts) once the buffer is full. No-op
  // when disabled.
  void record(TraceEvent ev);

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept { return events_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  void clear();

  void write_chrome_trace(std::ostream& out) const;

 private:
  std::size_t capacity_;
  bool enabled_{false};
  std::uint64_t dropped_{0};
  std::vector<TraceEvent> events_;
  std::map<std::uint32_t, std::string> thread_names_;
};

}  // namespace incast::obs

#endif  // INCAST_OBS_TRACE_H_
