// FlowTracer: deterministic, sampled flow-lifecycle latency attribution —
// the "tail autopsy" engine.
//
// For hash-sampled flows (seeded, jobs-invariant) it answers the question
// vantage telemetry cannot: *where did this slow flow's time go?* Two
// measurement levels combine into one exact decomposition:
//
//   Level 1 — sender timeline. Every TcpSender event on a sampled flow
//   closes the open wait interval and reopens one at the same timestamp, so
//   intervals partition each active period gap-free. Each interval is
//   classified retrospectively by (why the sender was blocked, what event
//   ended the wait): cwnd-limited, RTO wait, fast recovery, trim->NACK
//   recovery, or final-window drain.
//
//   Level 2 — hop residency. Ports stamp sampled data packets at enqueue
//   and read the stamp at dequeue, accumulating per-tier queue wait, PFC
//   pause overlap, serialization and propagation. The drain bucket — the
//   only Level-1 class that is pure network time — is split across these
//   components proportionally (integer floor arithmetic; the remainder and
//   any unknown-tier share land in `other`).
//
// The invariant the whole design serves: for every completed sampled flow,
// FlowBreakdown::component_sum() == fct_ns *exactly* (integer nanoseconds),
// which sim::Auditor::check_flow_breakdown enforces. Because intervals are
// closed/opened at identical timestamps there is no rounding anywhere in
// Level 1, and the Level-2 split distributes its remainder explicitly.
//
// Attachment mirrors obs::Hub and sim::Auditor: construct the tracer,
// sim.set_flow_tracer(&tracer) *before* building topology and senders (they
// cache the pointer at construction), run, then finalize(). With no tracer
// attached every hook is a cached-nullptr branch — zero overhead, gated by
// BM_FlowTraceOverhead in CI. Results are independent of whether a Hub is
// present: span emission is a side channel, so sweep points without the hub
// produce byte-identical breakdowns at any --jobs value.
#ifndef INCAST_OBS_FLOW_TRACE_H_
#define INCAST_OBS_FLOW_TRACE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/hub.h"

namespace incast::obs {

// Which tier of the topology a port belongs to, for per-tier queueing
// attribution. Builders tag ports once at construction (Port::set_trace_tier);
// untagged ports fold into `other` via kUnknown.
enum class HopTier : std::uint8_t { kUnknown = 0, kHost, kTor, kAgg, kSpine };
inline constexpr std::size_t kNumHopTiers = 5;

// One completed flow's exact FCT decomposition. All fields are integer
// nanoseconds and sum to fct_ns (see component_sum).
struct FlowBreakdown {
  std::uint64_t flow{0};
  std::int64_t fct_ns{0};  // sum of the flow's active periods

  // Network components (the drain bucket, split by hop residency).
  std::int64_t serialization_ns{0};
  std::int64_t propagation_ns{0};
  std::int64_t q_host_ns{0};
  std::int64_t q_tor_ns{0};
  std::int64_t q_agg_ns{0};
  std::int64_t q_spine_ns{0};
  std::int64_t pfc_pause_ns{0};

  // Sender stall classes (exact interval sums).
  std::int64_t cwnd_limited_ns{0};
  std::int64_t rto_wait_ns{0};
  std::int64_t fast_recovery_ns{0};
  std::int64_t nack_recovery_ns{0};

  // Split remainder, unknown-tier queueing, and anything unattributed.
  std::int64_t other_ns{0};

  [[nodiscard]] std::int64_t component_sum() const noexcept {
    return serialization_ns + propagation_ns + q_host_ns + q_tor_ns + q_agg_ns +
           q_spine_ns + pfc_pause_ns + cwnd_limited_ns + rto_wait_ns +
           fast_recovery_ns + nack_recovery_ns + other_ns;
  }
};

class FlowTracer {
 public:
  struct Config {
    // Seed for the sampling hash. Use the experiment's *base* seed (not the
    // per-point derived seed) so the same flow ids are sampled in every
    // sweep point — breakdowns stay comparable across a mode/degree grid.
    std::uint64_t seed{1};
    // 1-in-N flow sampling; 1 traces every flow. Sampling is a pure hash of
    // (flow id, seed) — independent of execution order and thread count.
    std::uint64_t sample_every{1};
  };

  // Why the sender was blocked when an interval opened.
  enum class BlockReason : std::uint8_t {
    kCwndLimited = 0,  // more data queued, window/pacing would not admit it
    kDrain,            // everything sent, waiting for the final ACKs
    kFastRecovery,     // inside NewReno/SACK fast recovery
  };

  // What event closed the interval.
  enum class UnblockCause : std::uint8_t {
    kAck = 0,  // (dup)ACK arrived
    kNack,     // trim NACK arrived
    kRto,      // retransmission timeout fired
    kTimer,    // pacing / tail-loss-probe timer fired
    kApp,      // application pushed more data
  };

  // `hub` may be nullptr: breakdowns are computed either way; a live hub
  // additionally gets per-flow waterfall async spans ("flow.active" plus a
  // "stall.*" child per wait interval, tid kFlowTidBase + flow, id = flow).
  explicit FlowTracer(const Config& config, Hub* hub = nullptr);

  FlowTracer(const FlowTracer&) = delete;
  FlowTracer& operator=(const FlowTracer&) = delete;

  // Jobs-invariant sampling decision. Senders call this once at
  // construction and cache nullptr when not sampled.
  [[nodiscard]] bool sampled(std::uint64_t flow) const noexcept;

  // --- Sender timeline (TcpSender, sampled flows only) ---

  // An active period opened (application handed the sender data while it
  // was idle). No-op if a period is already open.
  void on_period_start(std::uint64_t flow, std::int64_t now_ns);
  // An event woke the sender: closes the open interval and classifies it
  // by (stored reason, cause). No-op when no period is open.
  void on_unblocked(std::uint64_t flow, std::int64_t now_ns, UnblockCause cause);
  // The sender went back to waiting; records why. Must be called at the
  // same sim time as the preceding on_unblocked (event handlers are
  // instantaneous), which is what keeps the partition gap-free.
  void on_blocked(std::uint64_t flow, std::int64_t now_ns, BlockReason reason);
  // Everything acked: closes the period and accumulates it into fct_ns.
  void on_flow_complete(std::uint64_t flow, std::int64_t now_ns);

  // --- Hop residency (net::Port, sampled packets only) ---
  void on_hop(std::uint64_t flow, HopTier tier, std::int64_t queue_ns,
              std::int64_t pause_ns, std::int64_t serialization_ns,
              std::int64_t propagation_ns);

  // Closes waterfall spans still open (flows cut by max_sim_time), performs
  // the drain split, and returns one breakdown per *completed* sampled
  // flow, sorted by flow id. Call once, at end of run.
  [[nodiscard]] std::vector<FlowBreakdown> finalize(std::int64_t now_ns);

  // Sampled flows that were still mid-period at finalize (no FCT; excluded
  // from the report).
  [[nodiscard]] std::size_t incomplete_flows() const noexcept { return incomplete_; }

 private:
  struct FlowState {
    bool period_open{false};
    bool completed{false};
    std::int64_t period_start{0};
    std::int64_t blocked_since{0};
    BlockReason reason{BlockReason::kDrain};
    const char* stall_open{nullptr};  // waterfall span currently open

    std::int64_t active_ns{0};
    // Level-1 buckets (exact).
    std::int64_t cwnd_ns{0};
    std::int64_t rto_ns{0};
    std::int64_t fastrec_ns{0};
    std::int64_t nack_ns{0};
    std::int64_t drain_ns{0};
    // Level-2 hop accumulators (per-packet residency, overlapping in time —
    // used only as split weights, never summed into the FCT directly).
    std::int64_t hop_serialization_ns{0};
    std::int64_t hop_propagation_ns{0};
    std::int64_t hop_pause_ns{0};
    std::int64_t hop_queue_ns[kNumHopTiers]{};
  };

  void close_stall_span(FlowState& st, std::uint64_t flow, std::int64_t now_ns);

  Config config_;
  Hub* hub_{nullptr};
  std::unordered_map<std::uint64_t, FlowState> states_;
  std::size_t incomplete_{0};
};

// One percentile row of the tail-attribution report: the breakdown of the
// flow at the nearest-rank percentile of the FCT distribution.
struct TailAttributionRow {
  const char* pctl{""};  // "p50" / "p99" / "p999" (static strings)
  int flows{0};          // completed sampled flows the rank was taken over
  FlowBreakdown flow;
};

// p50/p99/p999 nearest-rank rows (ties broken by flow id). Empty input
// yields no rows.
[[nodiscard]] std::vector<TailAttributionRow> tail_attribution(
    std::vector<FlowBreakdown> flows);

// fct_breakdown.csv: fixed column order and integer-ns formatting — the
// artifact the determinism suite byte-compares across --jobs values.
[[nodiscard]] std::string fct_breakdown_csv_header();
void append_fct_breakdown_csv(std::string& out, const std::string& mode, int degree,
                              const std::vector<TailAttributionRow>& rows);

}  // namespace incast::obs

// Discovery macro, mirroring INCAST_OBS_HUB: a constant nullptr when the
// observability layer is compiled out, so every hook dead-code-eliminates.
#if INCAST_OBS_ENABLED
#define INCAST_FLOW_TRACER(sim) ((sim).flow_tracer())
#else
#define INCAST_FLOW_TRACER(sim) (static_cast<::incast::obs::FlowTracer*>(nullptr))
#endif

#endif  // INCAST_OBS_FLOW_TRACE_H_
