#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>
#include <tuple>
#include <utility>

namespace incast::obs {

namespace {

// All simulated activity lives in one logical process.
constexpr int kPid = 1;

void write_escaped(std::ostream& out, const std::string& s) {
  for (const char ch : s) {
    switch (ch) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out << buf;
        } else {
          out << ch;
        }
    }
  }
}

// Fixed-format microsecond timestamp: determinism requires an exact,
// locale-independent rendering, not ostream double formatting.
void write_ts(std::ostream& out, std::int64_t ts_ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ts_ns) / 1000.0);
  out << buf;
}

void write_event(std::ostream& out, const TraceEvent& ev, bool& first) {
  if (!first) out << ",\n";
  first = false;
  out << "{\"name\":\"";
  write_escaped(out, ev.name);
  out << "\",\"cat\":\"" << to_string(ev.category) << "\",\"ph\":\""
      << static_cast<char>(ev.phase) << "\",\"ts\":";
  write_ts(out, ev.ts_ns);
  out << ",\"pid\":" << kPid << ",\"tid\":" << ev.tid;
  if (ev.phase == TraceEvent::Phase::kAsyncBegin ||
      ev.phase == TraceEvent::Phase::kAsyncEnd) {
    out << ",\"id\":\"" << ev.id << "\"";
  }
  if (ev.phase == TraceEvent::Phase::kInstant) {
    out << ",\"s\":\"t\"";  // thread-scoped instant
  }
  if (ev.arg1_key != nullptr || ev.arg2_key != nullptr) {
    out << ",\"args\":{";
    if (ev.arg1_key != nullptr) {
      out << "\"" << ev.arg1_key << "\":" << ev.arg1_value;
    }
    if (ev.arg2_key != nullptr) {
      if (ev.arg1_key != nullptr) out << ",";
      out << "\"" << ev.arg2_key << "\":" << ev.arg2_value;
    }
    out << "}";
  } else if (ev.phase == TraceEvent::Phase::kAsyncBegin ||
             ev.phase == TraceEvent::Phase::kAsyncEnd) {
    // Perfetto renders async spans more reliably with an args object.
    out << ",\"args\":{}";
  }
  out << "}";
}

void write_metadata(std::ostream& out, const char* meta_name, std::uint32_t tid,
                    const std::string& value, bool& first) {
  if (!first) out << ",\n";
  first = false;
  out << "{\"name\":\"" << meta_name << "\",\"ph\":\"M\",\"pid\":" << kPid
      << ",\"tid\":" << tid << ",\"args\":{\"name\":\"";
  write_escaped(out, value);
  out << "\"}}";
}

}  // namespace

void write_chrome_trace(const std::vector<TraceEvent>& events,
                        const std::map<std::uint32_t, std::string>& thread_names,
                        std::uint64_t dropped, std::ostream& out) {
  using Phase = TraceEvent::Phase;

  // Pass 1: find unmatched span ends (defensive — a balanced emitter never
  // produces them) and spans left open at the end of the recording.
  std::vector<bool> skip(events.size(), false);
  std::map<std::uint32_t, std::vector<std::size_t>> open_sync;  // tid -> B stack
  std::map<std::tuple<TraceCategory, std::string, std::uint64_t>, std::vector<std::size_t>>
      open_async;
  std::int64_t end_ts = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    if (ev.ts_ns > end_ts) end_ts = ev.ts_ns;
    switch (ev.phase) {
      case Phase::kBegin:
        open_sync[ev.tid].push_back(i);
        break;
      case Phase::kEnd: {
        auto& stack = open_sync[ev.tid];
        if (stack.empty()) {
          skip[i] = true;
        } else {
          stack.pop_back();
        }
        break;
      }
      case Phase::kAsyncBegin:
        open_async[{ev.category, ev.name, ev.id}].push_back(i);
        break;
      case Phase::kAsyncEnd: {
        auto& stack = open_async[{ev.category, ev.name, ev.id}];
        if (stack.empty()) {
          skip[i] = true;
        } else {
          stack.pop_back();
        }
        break;
      }
      default:
        break;
    }
  }

  out << "{\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {\"clock\": \"sim-ns\","
      << " \"dropped_events\": \"" << dropped << "\"},\n\"traceEvents\": [\n";

  bool first = true;
  write_metadata(out, "process_name", 0, "incast_sim", first);
  for (const auto& [tid, name] : thread_names) {
    write_metadata(out, "thread_name", tid, name, first);
  }

  for (std::size_t i = 0; i < events.size(); ++i) {
    if (!skip[i]) write_event(out, events[i], first);
  }

  // Synthesized closers: sync spans LIFO per tid (tids in sorted order),
  // then async spans in (cat, name, id) order — all at the last timestamp,
  // so the export balances even when a run ends mid-recovery or mid-burst.
  for (const auto& [tid, stack] : open_sync) {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      TraceEvent closer = events[*it];
      closer.phase = Phase::kEnd;
      closer.ts_ns = end_ts;
      closer.arg1_key = "synthesized";
      closer.arg1_value = 1;
      closer.arg2_key = nullptr;
      write_event(out, closer, first);
    }
  }
  for (const auto& [key, stack] : open_async) {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      TraceEvent closer = events[*it];
      closer.phase = Phase::kAsyncEnd;
      closer.ts_ns = end_ts;
      closer.arg1_key = "synthesized";
      closer.arg1_value = 1;
      closer.arg2_key = nullptr;
      write_event(out, closer, first);
    }
  }

  out << "\n]\n}\n";
}

Tracer::Tracer(std::size_t capacity) : capacity_{capacity} {
  thread_names_[kWorkloadTid] = "workload";
  thread_names_[kQueueTid] = "queues";
  thread_names_[kFaultTid] = "faults";
}

void Tracer::set_thread_name(std::uint32_t tid, std::string name) {
  thread_names_[tid] = std::move(name);
}

void Tracer::record(TraceEvent ev) {
  if (!enabled_) return;
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(ev));
}

void Tracer::clear() {
  events_.clear();
  dropped_ = 0;
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  obs::write_chrome_trace(events_, thread_names_, dropped_, out);
}

}  // namespace incast::obs
