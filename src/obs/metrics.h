// Central metrics registry: hierarchically named counters, gauges and
// histograms, registered by components at construction time and snapshot-able
// at any simulation time.
//
// Counters and gauges are pull-model: a component registers a source
// callback (e.g. `[this] { return stats_.timeouts; }`) and pays nothing on
// its hot path — values are read only when snapshot() runs. Histograms are
// push-model (record() per observation) because their per-sample state
// cannot be reconstructed at snapshot time.
//
// Naming scheme (docs/OBSERVABILITY.md): dot-separated hierarchy, lowest
// level owned by the registering component —
//   tcp.sender.<flow>.rto_count
//   net.queue.<link>.drops
//   fault.injected.corrupt_bytes
//
// Registering a name twice throws std::invalid_argument: silent collisions
// would let one component's metric shadow another's. Components that
// register must unregister in their destructor (unregister_prefix() exists
// for exactly that); a source callback left behind would dangle.
//
// The registry is an ordered map, so snapshots list entries in sorted name
// order and the JSON export is byte-deterministic.
#ifndef INCAST_OBS_METRICS_H_
#define INCAST_OBS_METRICS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace incast::obs {

// Fixed-bound histogram: counts per bucket, where bucket i holds values
// <= upper_bounds[i] (plus an implicit +inf overflow bucket).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void record(double value);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  // bucket_counts().size() == bounds().size() + 1 (last is overflow).
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const noexcept {
    return buckets_;
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_{0};
  double sum_{0.0};
};

class MetricsRegistry {
 public:
  using IntSource = std::function<std::int64_t()>;
  using DoubleSource = std::function<double()>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // All three throw std::invalid_argument on an empty/invalid name or a
  // name collision.
  void register_counter(std::string name, IntSource source);
  void register_gauge(std::string name, DoubleSource source);
  Histogram& register_histogram(std::string name, std::vector<double> upper_bounds);

  // Removes one metric; no-op if absent.
  void unregister(const std::string& name);
  // Removes every metric whose name starts with `prefix`; returns how many.
  std::size_t unregister_prefix(const std::string& prefix);

  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::size_t size() const noexcept { return metrics_.size(); }

  // A point-in-time reading of every registered metric, sorted by name.
  struct Snapshot {
    struct Entry {
      std::string name;
      char kind{'c'};  // 'c' counter, 'g' gauge, 'h' histogram
      std::int64_t counter{0};
      double gauge{0.0};
      std::uint64_t hist_count{0};
      double hist_sum{0.0};
      std::vector<double> hist_bounds;
      std::vector<std::uint64_t> hist_buckets;
    };

    std::int64_t at_ns{0};  // sim time of the snapshot
    std::vector<Entry> entries;

    // Deterministic JSON: {"at_ns": ..., "metrics": {sorted name: value}}.
    void write_json(std::ostream& out) const;
    [[nodiscard]] std::string to_json() const;
  };

  [[nodiscard]] Snapshot snapshot(std::int64_t at_ns) const;

 private:
  struct Metric {
    char kind{'c'};
    IntSource counter;
    DoubleSource gauge;
    std::unique_ptr<Histogram> histogram;
  };

  void check_name(const std::string& name) const;

  std::map<std::string, Metric> metrics_;
};

}  // namespace incast::obs

#endif  // INCAST_OBS_METRICS_H_
