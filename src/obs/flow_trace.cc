#include "obs/flow_trace.h"

#include <algorithm>
#include <cstdio>

namespace incast::obs {

namespace {

// Same avalanche mix the sweep engine's seed derivation uses: flow ids are
// small sequential integers, so the hash — not the id — must carry the
// sampling randomness.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

[[nodiscard]] const char* stall_name(FlowTracer::BlockReason reason) noexcept {
  switch (reason) {
    case FlowTracer::BlockReason::kCwndLimited:
      return "stall.cwnd";
    case FlowTracer::BlockReason::kDrain:
      return "stall.drain";
    case FlowTracer::BlockReason::kFastRecovery:
      return "stall.recovery";
  }
  return "stall.cwnd";
}

[[nodiscard]] std::uint32_t flow_tid(std::uint64_t flow) noexcept {
  return kFlowTidBase + static_cast<std::uint32_t>(flow);
}

}  // namespace

FlowTracer::FlowTracer(const Config& config, Hub* hub) : config_{config}, hub_{hub} {
  if (hub_ != nullptr && !hub_->enabled()) hub_ = nullptr;
}

bool FlowTracer::sampled(std::uint64_t flow) const noexcept {
  if (config_.sample_every <= 1) return true;
  return splitmix64(flow ^ config_.seed) % config_.sample_every == 0;
}

void FlowTracer::close_stall_span(FlowState& st, std::uint64_t flow,
                                  std::int64_t now_ns) {
  if (hub_ != nullptr && st.stall_open != nullptr) {
    hub_->async_end(now_ns, TraceCategory::kTcp, st.stall_open, flow_tid(flow), flow);
  }
  st.stall_open = nullptr;
}

void FlowTracer::on_period_start(std::uint64_t flow, std::int64_t now_ns) {
  FlowState& st = states_[flow];
  if (st.period_open) return;
  st.period_open = true;
  st.period_start = now_ns;
  st.blocked_since = now_ns;
  st.reason = BlockReason::kDrain;
  if (hub_ != nullptr) {
    hub_->async_begin(now_ns, TraceCategory::kTcp, "flow.active", flow_tid(flow), flow,
                      "flow", static_cast<std::int64_t>(flow));
  }
}

void FlowTracer::on_unblocked(std::uint64_t flow, std::int64_t now_ns,
                              UnblockCause cause) {
  const auto it = states_.find(flow);
  if (it == states_.end() || !it->second.period_open) return;
  FlowState& st = it->second;
  const std::int64_t dur = now_ns - st.blocked_since;
  // The cause wins for recovery events (the whole wait was spent reaching
  // them); otherwise the stored reason says what the sender was waiting on.
  if (cause == UnblockCause::kRto) {
    st.rto_ns += dur;
  } else if (cause == UnblockCause::kNack) {
    st.nack_ns += dur;
  } else if (st.reason == BlockReason::kFastRecovery) {
    st.fastrec_ns += dur;
  } else if (st.reason == BlockReason::kCwndLimited) {
    st.cwnd_ns += dur;
  } else {
    st.drain_ns += dur;
  }
  st.blocked_since = now_ns;
  close_stall_span(st, flow, now_ns);
}

void FlowTracer::on_blocked(std::uint64_t flow, std::int64_t now_ns,
                            BlockReason reason) {
  const auto it = states_.find(flow);
  if (it == states_.end() || !it->second.period_open) return;
  FlowState& st = it->second;
  st.reason = reason;
  if (hub_ != nullptr) {
    const char* name = stall_name(reason);
    if (st.stall_open == name) return;  // same literal: span already open
    close_stall_span(st, flow, now_ns);
    st.stall_open = name;
    hub_->async_begin(now_ns, TraceCategory::kTcp, name, flow_tid(flow), flow);
  }
}

void FlowTracer::on_flow_complete(std::uint64_t flow, std::int64_t now_ns) {
  const auto it = states_.find(flow);
  if (it == states_.end() || !it->second.period_open) return;
  FlowState& st = it->second;
  // Close any residual tail interval (normally zero-length: the ACK that
  // completed the flow already closed it via on_unblocked at this ts).
  on_unblocked(flow, now_ns, UnblockCause::kAck);
  st.active_ns += now_ns - st.period_start;
  st.period_open = false;
  st.completed = true;
  close_stall_span(st, flow, now_ns);
  if (hub_ != nullptr) {
    hub_->async_end(now_ns, TraceCategory::kTcp, "flow.active", flow_tid(flow), flow);
  }
}

void FlowTracer::on_hop(std::uint64_t flow, HopTier tier, std::int64_t queue_ns,
                        std::int64_t pause_ns, std::int64_t serialization_ns,
                        std::int64_t propagation_ns) {
  const auto it = states_.find(flow);
  if (it == states_.end()) return;
  FlowState& st = it->second;
  st.hop_serialization_ns += serialization_ns > 0 ? serialization_ns : 0;
  st.hop_propagation_ns += propagation_ns > 0 ? propagation_ns : 0;
  st.hop_pause_ns += pause_ns > 0 ? pause_ns : 0;
  st.hop_queue_ns[static_cast<std::size_t>(tier)] += queue_ns > 0 ? queue_ns : 0;
}

std::vector<FlowBreakdown> FlowTracer::finalize(std::int64_t now_ns) {
  // Flows cut mid-period have no FCT: count them, and close their waterfall
  // spans in sorted order so the trace needs no synthesized closers.
  std::vector<std::uint64_t> open;
  for (auto& [flow, st] : states_) {
    if (st.period_open) open.push_back(flow);
  }
  std::sort(open.begin(), open.end());
  for (const std::uint64_t flow : open) {
    FlowState& st = states_[flow];
    close_stall_span(st, flow, now_ns);
    if (hub_ != nullptr) {
      hub_->async_end(now_ns, TraceCategory::kTcp, "flow.active", flow_tid(flow), flow);
    }
    st.period_open = false;
    ++incomplete_;
  }

  std::vector<FlowBreakdown> out;
  out.reserve(states_.size());
  for (const auto& [flow, st] : states_) {
    if (!st.completed) continue;
    FlowBreakdown b;
    b.flow = flow;
    b.fct_ns = st.active_ns;
    b.cwnd_limited_ns = st.cwnd_ns;
    b.rto_wait_ns = st.rto_ns;
    b.fast_recovery_ns = st.fastrec_ns;
    b.nack_recovery_ns = st.nack_ns;

    // Split the drain bucket — pure network time — across hop-residency
    // components proportionally. Floor division per component; the
    // remainder plus any unknown-tier share lands in other_ns, keeping
    // component_sum() == fct_ns exact.
    const std::int64_t comp[7] = {
        st.hop_serialization_ns,
        st.hop_propagation_ns,
        st.hop_queue_ns[static_cast<std::size_t>(HopTier::kHost)],
        st.hop_queue_ns[static_cast<std::size_t>(HopTier::kTor)],
        st.hop_queue_ns[static_cast<std::size_t>(HopTier::kAgg)],
        st.hop_queue_ns[static_cast<std::size_t>(HopTier::kSpine)],
        st.hop_pause_ns,
    };
    std::int64_t total_hop =
        st.hop_queue_ns[static_cast<std::size_t>(HopTier::kUnknown)];
    for (const std::int64_t c : comp) total_hop += c;
    const std::int64_t drain = st.drain_ns;
    if (drain > 0 && total_hop > 0) {
      std::int64_t shares[7];
      std::int64_t assigned = 0;
      for (int i = 0; i < 7; ++i) {
        shares[i] = static_cast<std::int64_t>(
            static_cast<__int128>(drain) * comp[i] / total_hop);
        assigned += shares[i];
      }
      b.serialization_ns = shares[0];
      b.propagation_ns = shares[1];
      b.q_host_ns = shares[2];
      b.q_tor_ns = shares[3];
      b.q_agg_ns = shares[4];
      b.q_spine_ns = shares[5];
      b.pfc_pause_ns = shares[6];
      b.other_ns = drain - assigned;
    } else {
      b.other_ns = drain;
    }
    out.push_back(b);
  }
  std::sort(out.begin(), out.end(),
            [](const FlowBreakdown& a, const FlowBreakdown& x) { return a.flow < x.flow; });
  return out;
}

std::vector<TailAttributionRow> tail_attribution(std::vector<FlowBreakdown> flows) {
  std::vector<TailAttributionRow> rows;
  if (flows.empty()) return rows;
  std::sort(flows.begin(), flows.end(),
            [](const FlowBreakdown& a, const FlowBreakdown& b) {
              return a.fct_ns != b.fct_ns ? a.fct_ns < b.fct_ns : a.flow < b.flow;
            });
  const std::size_t n = flows.size();
  // Nearest-rank: index = ceil(q * n) - 1, with q as an exact fraction.
  const struct {
    const char* name;
    std::size_t num, den;
  } pctls[] = {{"p50", 50, 100}, {"p99", 99, 100}, {"p999", 999, 1000}};
  for (const auto& p : pctls) {
    const std::size_t idx = (p.num * n + p.den - 1) / p.den - 1;
    rows.push_back(TailAttributionRow{p.name, static_cast<int>(n), flows[idx]});
  }
  return rows;
}

std::string fct_breakdown_csv_header() {
  return "mode,degree,pctl,flows,fct_ns,serialization_ns,propagation_ns,"
         "q_host_ns,q_tor_ns,q_agg_ns,q_spine_ns,pfc_pause_ns,cwnd_limited_ns,"
         "rto_wait_ns,fast_recovery_ns,nack_recovery_ns,other_ns\n";
}

void append_fct_breakdown_csv(std::string& out, const std::string& mode, int degree,
                              const std::vector<TailAttributionRow>& rows) {
  char buf[512];
  for (const TailAttributionRow& r : rows) {
    const FlowBreakdown& b = r.flow;
    std::snprintf(buf, sizeof(buf),
                  "%s,%d,%s,%d,%lld,%lld,%lld,%lld,%lld,%lld,%lld,%lld,%lld,%lld,"
                  "%lld,%lld,%lld\n",
                  mode.c_str(), degree, r.pctl, r.flows,
                  static_cast<long long>(b.fct_ns),
                  static_cast<long long>(b.serialization_ns),
                  static_cast<long long>(b.propagation_ns),
                  static_cast<long long>(b.q_host_ns),
                  static_cast<long long>(b.q_tor_ns),
                  static_cast<long long>(b.q_agg_ns),
                  static_cast<long long>(b.q_spine_ns),
                  static_cast<long long>(b.pfc_pause_ns),
                  static_cast<long long>(b.cwnd_limited_ns),
                  static_cast<long long>(b.rto_wait_ns),
                  static_cast<long long>(b.fast_recovery_ns),
                  static_cast<long long>(b.nack_recovery_ns),
                  static_cast<long long>(b.other_ns));
    out += buf;
  }
}

}  // namespace incast::obs
