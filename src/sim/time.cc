#include "sim/time.h"

#include <cstdio>

namespace incast::sim {

std::string Time::to_string() const {
  if (is_infinite()) return "inf";
  char buf[32];
  const std::int64_t v = ns_;
  if (v == 0) {
    return "0s";
  }
  if (v % 1'000'000'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%llds", static_cast<long long>(v / 1'000'000'000));
  } else if (v % 1'000'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lldms", static_cast<long long>(v / 1'000'000));
  } else if (v % 1'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(v / 1'000));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(v));
  }
  return buf;
}

}  // namespace incast::sim
