// StableChunkArena: chunked placement storage with stable addresses.
//
// The scale-up layouts (docs/PERFORMANCE.md) need containers of pinned
// objects — net::Port and tcp::TcpConnection capture `this` in scheduled
// events, so their addresses must never move — without paying one heap
// allocation per object the way vector<unique_ptr<T>> does. A
// StableChunkArena placement-constructs N objects per chunk: addresses are
// stable for the arena's lifetime (growth allocates a new chunk, it never
// relocates existing ones), elements of one chunk are contiguous, and the
// allocation count drops by the chunk factor. Index-based handles replace
// owning pointers: arena[i] is a bounds-checked O(1) lookup.
//
// Not a general container: no erase, no insert, no copies/moves of the
// arena or its elements. Destruction runs element destructors in reverse
// construction order.
#ifndef INCAST_SIM_STABLE_ARENA_H_
#define INCAST_SIM_STABLE_ARENA_H_

#include <cstddef>
#include <memory>
#include <new>
#include <stdexcept>
#include <utility>
#include <vector>

namespace incast::sim {

template <typename T, std::size_t ChunkElems = 16>
class StableChunkArena {
  static_assert(ChunkElems > 0, "a chunk holds at least one element");

 public:
  StableChunkArena() = default;
  StableChunkArena(const StableChunkArena&) = delete;
  StableChunkArena& operator=(const StableChunkArena&) = delete;

  ~StableChunkArena() { clear(); }

  // Constructs a new element in place and returns it. Never invalidates
  // references to earlier elements.
  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == chunks_.size() * ChunkElems) {
      chunks_.push_back(std::make_unique<Chunk>());
    }
    T* slot = slot_ptr(size_);
    T* obj = ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *obj;
  }

  [[nodiscard]] T& operator[](std::size_t i) {
    if (i >= size_) throw std::out_of_range("StableChunkArena index out of range");
    return *slot_ptr(i);
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    if (i >= size_) throw std::out_of_range("StableChunkArena index out of range");
    return *const_cast<StableChunkArena*>(this)->slot_ptr(i);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  // Bytes of element storage held (capacity, not just constructed elements)
  // — the arena's contribution to a bytes-per-flow budget.
  [[nodiscard]] std::size_t bytes() const noexcept {
    return chunks_.size() * sizeof(Chunk);
  }

  // Destroys every element (reverse order) and releases the chunks.
  void clear() noexcept {
    while (size_ > 0) {
      --size_;
      slot_ptr(size_)->~T();
    }
    chunks_.clear();
  }

 private:
  struct Chunk {
    alignas(T) unsigned char raw[sizeof(T) * ChunkElems];
  };

  [[nodiscard]] T* slot_ptr(std::size_t i) noexcept {
    Chunk& c = *chunks_[i / ChunkElems];
    return std::launder(
        reinterpret_cast<T*>(c.raw + (i % ChunkElems) * sizeof(T)));
  }

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::size_t size_{0};
};

}  // namespace incast::sim

#endif  // INCAST_SIM_STABLE_ARENA_H_
