#include "sim/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

namespace incast::sim {

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_task_seed(std::uint64_t base_seed, std::uint64_t task_index) noexcept {
  // First round folds the index into the stream position, second round mixes
  // the result; both go through the full splitmix64 finalizer so adjacent
  // indices (the common case in a grid sweep) share no low-bit structure.
  std::uint64_t state = base_seed;
  state ^= splitmix64_next(task_index);
  return splitmix64_next(state);
}

SweepRunner::SweepRunner(int jobs) noexcept : jobs_{jobs} {
  if (jobs_ <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs_ = hw > 0 ? static_cast<int>(hw) : 1;
  }
}

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

// One worker's task queue. The owner pops from the front (processing its
// share in rough index order, which keeps memory hot for adjacent grid
// cells); thieves steal from the back, minimizing contention with the
// owner. A plain mutex per deque is ample here: tasks are whole
// simulations (milliseconds to seconds each), so queue operations are
// vanishingly rare next to task work.
struct WorkerDeque {
  std::mutex mu;
  std::deque<std::size_t> tasks;
};

}  // namespace

void SweepRunner::execute(std::size_t n,
                          const std::function<void(std::size_t, TaskStats&)>& task) {
  stats_ = RunStats{};
  stats_.jobs = jobs_;
  stats_.tasks.resize(n);
  if (n == 0) return;

  const auto sweep_start = Clock::now();

  auto run_one = [&](std::size_t index, int worker) {
    TaskStats& st = stats_.tasks[index];
    st.worker = worker;
    const auto t0 = Clock::now();
    task(index, st);
    st.wall_ms = ms_between(t0, Clock::now());
  };

  if (jobs_ == 1 || n == 1) {
    // Inline sequential path: no threads, no synchronization — exactly the
    // historical behavior of the callers this class replaced.
    for (std::size_t i = 0; i < n; ++i) run_one(i, 0);
  } else {
    const int workers = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(jobs_), n));
    std::vector<WorkerDeque> deques(static_cast<std::size_t>(workers));
    // Round-robin initial distribution: worker w starts with tasks
    // w, w+workers, w+2*workers, ... so every worker begins with work and
    // stealing only happens once load skews.
    for (std::size_t i = 0; i < n; ++i) {
      deques[i % static_cast<std::size_t>(workers)].tasks.push_back(i);
    }

    std::atomic<std::uint64_t> steals{0};
    std::mutex error_mu;
    std::exception_ptr first_error;

    auto worker_loop = [&](int me) {
      for (;;) {
        std::size_t index = 0;
        bool found = false;
        {
          // Own deque first, front pop.
          WorkerDeque& mine = deques[static_cast<std::size_t>(me)];
          std::lock_guard<std::mutex> lock(mine.mu);
          if (!mine.tasks.empty()) {
            index = mine.tasks.front();
            mine.tasks.pop_front();
            found = true;
          }
        }
        if (!found) {
          // Steal from the back of the first non-empty victim. Tasks never
          // spawn tasks, so once every deque is empty there is no more work
          // and the worker can retire.
          for (int v = 1; v < workers && !found; ++v) {
            WorkerDeque& victim = deques[static_cast<std::size_t>((me + v) % workers)];
            std::lock_guard<std::mutex> lock(victim.mu);
            if (!victim.tasks.empty()) {
              index = victim.tasks.back();
              victim.tasks.pop_back();
              found = true;
              steals.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
        if (!found) return;
        try {
          run_one(index, me);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
      }
    };

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(workers) - 1);
    for (int w = 1; w < workers; ++w) threads.emplace_back(worker_loop, w);
    worker_loop(0);  // the calling thread is worker 0
    for (auto& t : threads) t.join();

    stats_.steals = steals.load(std::memory_order_relaxed);
    if (first_error) std::rethrow_exception(first_error);
  }

  stats_.wall_ms = ms_between(sweep_start, Clock::now());
  for (const TaskStats& st : stats_.tasks) {
    stats_.total_events += st.events;
    for (std::size_t c = 0; c < kNumEventCategories; ++c) {
      stats_.events_by_category[c] += st.events_by_category[c];
    }
    stats_.peak_events_pending =
        std::max(stats_.peak_events_pending, st.peak_events_pending);
    stats_.slab_high_water = std::max(stats_.slab_high_water, st.slab_high_water);
  }
}

}  // namespace incast::sim
