#include "sim/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "sim/auditor.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace incast::sim {

namespace {

// Process-wide peak RSS in bytes (0 where unavailable). Linux reports
// ru_maxrss in kilobytes, macOS in bytes.
[[nodiscard]] std::uint64_t peak_rss_bytes_now() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
#endif
#else
  return 0;
#endif
}

}  // namespace

const char* to_string(FailureCategory category) noexcept {
  switch (category) {
    case FailureCategory::kException: return "exception";
    case FailureCategory::kAudit: return "audit";
    case FailureCategory::kBudget: return "budget";
    case FailureCategory::kCancelled: return "cancelled";
  }
  return "unknown";
}

bool SweepRunner::RunStats::failed(std::size_t index) const noexcept {
  const auto it = std::lower_bound(
      failures.begin(), failures.end(), index,
      [](const TaskFailure& f, std::size_t i) { return f.index < i; });
  return it != failures.end() && it->index == index;
}

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_task_seed(std::uint64_t base_seed, std::uint64_t task_index) noexcept {
  // First round folds the index into the stream position, second round mixes
  // the result; both go through the full splitmix64 finalizer so adjacent
  // indices (the common case in a grid sweep) share no low-bit structure.
  std::uint64_t state = base_seed;
  state ^= splitmix64_next(task_index);
  return splitmix64_next(state);
}

SweepRunner::SweepRunner(int jobs) noexcept : jobs_{jobs} {
  if (jobs_ <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs_ = hw > 0 ? static_cast<int>(hw) : 1;
  }
}

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

// One worker's task queue. The owner pops from the front (processing its
// share in rough index order, which keeps memory hot for adjacent grid
// cells); thieves steal from the back, minimizing contention with the
// owner. A plain mutex per deque is ample here: tasks are whole
// simulations (milliseconds to seconds each), so queue operations are
// vanishingly rare next to task work.
struct WorkerDeque {
  std::mutex mu;
  std::deque<std::size_t> tasks;
};

}  // namespace

namespace {

// Maps a task's exception onto the failure taxonomy, extracting the message.
FailureCategory classify_failure(const std::exception_ptr& ep, std::string& message) {
  try {
    std::rethrow_exception(ep);
  } catch (const RunCancelled& e) {
    message = e.what();
    return FailureCategory::kCancelled;
  } catch (const AuditFailure& e) {
    message = e.what();
    return FailureCategory::kAudit;
  } catch (const BudgetExceeded& e) {
    message = e.what();
    return FailureCategory::kBudget;
  } catch (const std::exception& e) {
    message = e.what();
    return FailureCategory::kException;
  } catch (...) {
    message = "unknown exception";
    return FailureCategory::kException;
  }
}

}  // namespace

void SweepRunner::execute(std::size_t n,
                          const std::function<void(std::size_t, TaskStats&)>& task) {
  stats_ = RunStats{};
  stats_.jobs = jobs_;
  stats_.tasks.resize(n);
  if (n == 0) return;

  const auto sweep_start = Clock::now();

  auto cancelled = [this] {
    return policy_.cancel != nullptr &&
           policy_.cancel->load(std::memory_order_relaxed);
  };

  auto run_one = [&](std::size_t index, int worker) {
    TaskStats& st = stats_.tasks[index];
    st.worker = worker;
    st.attempts = 1;
    const auto t0 = Clock::now();
    task(index, st);
    st.wall_ms = ms_between(t0, Clock::now());
  };

  // Quarantine machinery (fail_fast off): retries, the failure list, and
  // the mutex serializing record + on_failure callback.
  std::atomic<std::uint64_t> retries{0};
  std::mutex failures_mu;
  std::vector<TaskFailure> failures;

  auto run_quarantined = [&](std::size_t index, int worker) {
    TaskStats& st = stats_.tasks[index];
    const int max_attempts = std::max(policy_.max_attempts, 1);
    for (int attempt = 1;; ++attempt) {
      // Each attempt starts from clean stats — a partial failed attempt
      // must not leak event counts into the successful one.
      st = TaskStats{};
      st.worker = worker;
      st.attempts = attempt;
      const auto t0 = Clock::now();
      try {
        task(index, st);
        st.wall_ms = ms_between(t0, Clock::now());
        return;
      } catch (...) {
        st.wall_ms = ms_between(t0, Clock::now());
        std::string message;
        const FailureCategory category =
            classify_failure(std::current_exception(), message);
        if (category != FailureCategory::kCancelled && attempt < max_attempts &&
            !cancelled()) {
          retries.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        TaskFailure failure;
        failure.index = index;
        failure.seed = policy_.seed_of ? policy_.seed_of(index) : 0;
        failure.category = category;
        failure.message = std::move(message);
        failure.attempts = attempt;
        {
          std::lock_guard<std::mutex> lock(failures_mu);
          if (policy_.on_failure) policy_.on_failure(failure);
          failures.push_back(std::move(failure));
        }
        return;
      }
    }
  };

  if (jobs_ == 1 || n == 1) {
    // Inline sequential path: no threads, no synchronization — exactly the
    // historical behavior of the callers this class replaced.
    for (std::size_t i = 0; i < n; ++i) {
      if (cancelled()) {
        stats_.tasks_not_run = n - i;
        break;
      }
      if (policy_.fail_fast) {
        run_one(i, 0);
      } else {
        run_quarantined(i, 0);
      }
    }
  } else {
    const int workers = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(jobs_), n));
    std::vector<WorkerDeque> deques(static_cast<std::size_t>(workers));
    // Round-robin initial distribution: worker w starts with tasks
    // w, w+workers, w+2*workers, ... so every worker begins with work and
    // stealing only happens once load skews.
    for (std::size_t i = 0; i < n; ++i) {
      deques[i % static_cast<std::size_t>(workers)].tasks.push_back(i);
    }

    std::atomic<std::uint64_t> steals{0};
    std::mutex error_mu;
    std::exception_ptr first_error;

    auto worker_loop = [&](int me) {
      for (;;) {
        // Cooperative cancellation: stop picking up new work; whatever is
        // left in the deques is counted as not run after the join.
        if (cancelled()) return;
        std::size_t index = 0;
        bool found = false;
        {
          // Own deque first, front pop.
          WorkerDeque& mine = deques[static_cast<std::size_t>(me)];
          std::lock_guard<std::mutex> lock(mine.mu);
          if (!mine.tasks.empty()) {
            index = mine.tasks.front();
            mine.tasks.pop_front();
            found = true;
          }
        }
        if (!found) {
          // Steal from the back of the first non-empty victim. Tasks never
          // spawn tasks, so once every deque is empty there is no more work
          // and the worker can retire.
          for (int v = 1; v < workers && !found; ++v) {
            WorkerDeque& victim = deques[static_cast<std::size_t>((me + v) % workers)];
            std::lock_guard<std::mutex> lock(victim.mu);
            if (!victim.tasks.empty()) {
              index = victim.tasks.back();
              victim.tasks.pop_back();
              found = true;
              steals.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
        if (!found) return;
        if (policy_.fail_fast) {
          try {
            run_one(index, me);
          } catch (...) {
            std::lock_guard<std::mutex> lock(error_mu);
            if (!first_error) first_error = std::current_exception();
          }
        } else {
          run_quarantined(index, me);
        }
      }
    };

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(workers) - 1);
    for (int w = 1; w < workers; ++w) threads.emplace_back(worker_loop, w);
    worker_loop(0);  // the calling thread is worker 0
    for (auto& t : threads) t.join();

    for (const WorkerDeque& d : deques) stats_.tasks_not_run += d.tasks.size();
    stats_.steals = steals.load(std::memory_order_relaxed);
    if (first_error) std::rethrow_exception(first_error);
  }

  // Quarantine bookkeeping: failures sorted by index so the output is
  // deterministic regardless of which worker recorded what first.
  std::sort(failures.begin(), failures.end(),
            [](const TaskFailure& a, const TaskFailure& b) { return a.index < b.index; });
  stats_.failures = std::move(failures);
  stats_.retries = retries.load(std::memory_order_relaxed);

  stats_.wall_ms = ms_between(sweep_start, Clock::now());
  stats_.peak_rss_bytes = peak_rss_bytes_now();
  for (const TaskStats& st : stats_.tasks) {
    stats_.total_events += st.events;
    for (std::size_t c = 0; c < kNumEventCategories; ++c) {
      stats_.events_by_category[c] += st.events_by_category[c];
    }
    stats_.peak_events_pending =
        std::max(stats_.peak_events_pending, st.peak_events_pending);
    stats_.slab_high_water = std::max(stats_.slab_high_water, st.slab_high_water);
  }
}

}  // namespace incast::sim
