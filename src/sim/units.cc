#include "sim/units.h"

#include <cstdio>

namespace incast::sim {

std::string Bandwidth::to_string() const {
  char buf[32];
  if (bps_ >= 1'000'000'000 && bps_ % 1'000'000'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lldGbps", static_cast<long long>(bps_ / 1'000'000'000));
  } else if (bps_ >= 1'000'000 && bps_ % 1'000'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lldMbps", static_cast<long long>(bps_ / 1'000'000));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldbps", static_cast<long long>(bps_));
  }
  return buf;
}

}  // namespace incast::sim
