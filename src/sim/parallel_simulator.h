// ParallelSimulator: conservative (lookahead-based) windowed execution of
// one simulation run sharded across several sim::Simulator domains.
//
// Algorithm. Let T be the minimum next-event time across all domains and L
// the lookahead (the minimum propagation delay of any inter-domain link).
// Every event in [T, T+L) can be executed without inter-domain coordination:
// a packet transmitted at time t in that window arrives at its cross-domain
// peer no earlier than t + L >= T + L, i.e. strictly after the window. So
// the engine repeats:
//
//   1. every domain runs its events with timestamp < window_end in
//      parallel, posting cross-domain traffic to mailboxes (sim/domain.h);
//   2. all workers rendezvous at a generation barrier; the last arriver
//      becomes the coordinator and — with every other thread quiescent —
//      drains mailboxes into destination queues, samples memory, checks the
//      stop predicate, and computes the next window from the new global
//      minimum next-event time.
//
// There are no null messages and no per-link channel clocks: the barrier is
// global, which is the right trade for this workload (every domain is busy
// every window during an incast, and the fan-in rack would be the clock
// bottleneck of any channel-clocked scheme anyway).
//
// Determinism. Window boundaries depend only on the global event set —
// min-next-time and the stop predicate are computed from all domains at a
// barrier — so the window sequence is identical at any domain count,
// including 1. Within a window each domain executes in (time, key) order
// with decomposition-invariant keys (Simulator keyed ordering), which makes
// the whole run the projection of one global total order. The engine
// therefore produces byte-identical results at any `--domains N`.
//
// Threads. Domain 0 runs on the calling thread; domains 1..N-1 each get a
// worker thread for the duration of run(). Mailbox posts during a window
// are single-producer per (src, dst) pair and are read only inside the
// barrier's critical section, so the barrier mutex is the synchronization
// edge for every cross-domain byte — no atomics on the packet path.
//
// Exceptions thrown inside a domain (audit failures, budget aborts) are
// captured, the run winds down at the next barrier, and the first exception
// is rethrown on the calling thread.
#ifndef INCAST_SIM_PARALLEL_SIMULATOR_H_
#define INCAST_SIM_PARALLEL_SIMULATOR_H_

#include <array>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <vector>

#include "sim/domain.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace incast::sim {

class ParallelSimulator {
 public:
  struct Config {
    // Window length L: the minimum inter-domain propagation delay. Must be
    // positive — a zero-lookahead topology cannot be decomposed
    // conservatively.
    Time lookahead{Time::zero()};
    // Simulated-time horizon: the run finishes once every pending event
    // lies beyond `deadline` (all domain clocks then advance to it), or
    // earlier when the stop predicate fires.
    Time deadline{Time::infinity()};
  };

  // Barrier-time callbacks, all invoked serially by the coordinator while
  // every worker is quiescent — they may touch any domain's state freely.
  struct Hooks {
    // Drain cross-domain mailboxes into destination event queues.
    // `completed_end` is the exclusive upper bound of the window that just
    // ran; every drained entry must have timestamp >= completed_end, and
    // the drain hook is where lookahead violations are detected.
    std::function<void(Time completed_end)> drain;
    // Optional: sample global state (e.g. live-packet high-water marks)
    // after the drain, while counts are consistent.
    std::function<void()> sample;
    // Optional: return true to finish the run at this barrier (e.g. all
    // flows completed). Checked after drain + sample. May throw to abort
    // (e.g. a global event budget) — the exception surfaces from run().
    std::function<bool()> should_stop;
  };

  // Execution diagnostics. These describe *how* the run was executed, not
  // what it simulated: everything here except `end_time`, `windows`, and
  // `window_hist` depends on thread scheduling or domain count and is
  // excluded from the determinism contract (see docs/PARALLELISM.md).
  struct Stats {
    std::uint64_t windows{0};
    // Events dispatched per domain over the whole run (N-invariant in sum,
    // per-domain split depends on the assignment).
    std::vector<std::uint64_t> events_per_domain;
    // Wall nanoseconds threads spent blocked at the barrier, summed over
    // all non-coordinator waiters (scheduling-dependent).
    std::uint64_t barrier_stall_ns{0};
    // Histogram of global events per window, log2 buckets (N-invariant:
    // windows and the event set are decomposition-independent).
    std::array<std::uint64_t, kWindowHistBuckets> window_hist{};
    // True if the run ended via the stop predicate, false if it ran out
    // the deadline.
    bool stopped{false};
  };

  // `domains` are borrowed; every one must already have keyed ordering
  // enabled and its initial events scheduled.
  ParallelSimulator(std::vector<Simulator*> domains, Config config, Hooks hooks);

  ParallelSimulator(const ParallelSimulator&) = delete;
  ParallelSimulator& operator=(const ParallelSimulator&) = delete;

  // Executes the run to completion and returns the diagnostics. Call once.
  Stats run();

 private:
  void worker_loop(int domain);
  // Runs at the barrier by the last arriver, under lock, all peers waiting.
  void coordinate();
  [[nodiscard]] Time global_next_event_time() const;
  [[nodiscard]] std::uint64_t total_events() const;

  std::vector<Simulator*> domains_;
  Config config_;
  Hooks hooks_;

  std::mutex mu_;
  std::condition_variable cv_;
  int arrived_{0};
  std::uint64_t generation_{0};
  bool done_{false};
  Time window_end_{Time::zero()};
  std::uint64_t events_at_window_start_{0};
  std::exception_ptr first_error_;
  Stats stats_;
};

}  // namespace incast::sim

#endif  // INCAST_SIM_PARALLEL_SIMULATOR_H_
