#include "sim/parallel_simulator.h"

#include <cassert>
#include <chrono>
#include <thread>
#include <utility>

namespace incast::sim {

ParallelSimulator::ParallelSimulator(std::vector<Simulator*> domains,
                                     Config config, Hooks hooks)
    : domains_{std::move(domains)}, config_{config}, hooks_{std::move(hooks)} {
  assert(!domains_.empty());
  assert(config_.lookahead > Time::zero() &&
         "conservative decomposition needs positive lookahead");
  stats_.events_per_domain.assign(domains_.size(), 0);
}

Time ParallelSimulator::global_next_event_time() const {
  Time t = Time::infinity();
  for (const Simulator* d : domains_) {
    const Time next = d->next_event_time();
    if (next < t) t = next;
  }
  return t;
}

std::uint64_t ParallelSimulator::total_events() const {
  std::uint64_t total = 0;
  for (const Simulator* d : domains_) total += d->events_processed();
  return total;
}

ParallelSimulator::Stats ParallelSimulator::run() {
  // First window. If nothing is scheduled within the deadline the run is
  // trivially over; otherwise open [T, min(T+L, deadline+1ns)). The +1 ns
  // keeps run_until() semantics: events at exactly the deadline still run
  // (window bounds are exclusive).
  const Time first = global_next_event_time();
  if (first > config_.deadline) {
    for (Simulator* d : domains_) d->advance_to(config_.deadline);
    return std::move(stats_);
  }
  window_end_ = std::min(first + config_.lookahead,
                         config_.deadline + Time::nanoseconds(1));
  events_at_window_start_ = total_events();

  const int n = static_cast<int>(domains_.size());
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(n) - 1);
  for (int d = 1; d < n; ++d) {
    workers.emplace_back([this, d] { worker_loop(d); });
  }
  worker_loop(0);
  for (std::thread& t : workers) t.join();

  for (int d = 0; d < n; ++d) {
    stats_.events_per_domain[static_cast<std::size_t>(d)] =
        domains_[static_cast<std::size_t>(d)]->events_processed();
  }
  if (first_error_) std::rethrow_exception(first_error_);
  return std::move(stats_);
}

void ParallelSimulator::worker_loop(int domain) {
  Simulator& sim = *domains_[static_cast<std::size_t>(domain)];
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (done_) return;
    }
    const Time end = window_end_;  // stable between barriers
    try {
      sim.run_window(end);
    } catch (...) {
      std::unique_lock<std::mutex> lk(mu_);
      if (!first_error_) first_error_ = std::current_exception();
      // Fall through to the barrier so peers are not left waiting; the
      // coordinator sees the error and winds the run down.
    }

    // Generation barrier: last arriver coordinates, everyone else waits
    // for the generation to tick.
    std::unique_lock<std::mutex> lk(mu_);
    if (++arrived_ == static_cast<int>(domains_.size())) {
      arrived_ = 0;
      coordinate();
      ++generation_;
      cv_.notify_all();
    } else {
      const std::uint64_t gen = generation_;
      const auto t0 = std::chrono::steady_clock::now();
      cv_.wait(lk, [this, gen] { return generation_ != gen; });
      const auto t1 = std::chrono::steady_clock::now();
      stats_.barrier_stall_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    }
  }
}

void ParallelSimulator::coordinate() {
  // Runs under mu_ with every other thread blocked on the condition
  // variable: all domain queues, mailboxes, and counters are quiescent and
  // may be touched freely.
  if (first_error_) {
    done_ = true;
    return;
  }
  const Time completed_end = window_end_;
  ++stats_.windows;
  const std::uint64_t events_now = total_events();
  ++stats_.window_hist[window_hist_bucket(events_now - events_at_window_start_)];
  events_at_window_start_ = events_now;

  try {
    if (hooks_.drain) hooks_.drain(completed_end);
    if (hooks_.sample) hooks_.sample();
    if (hooks_.should_stop && hooks_.should_stop()) {
      stats_.stopped = true;
      done_ = true;
      return;
    }
  } catch (...) {
    first_error_ = std::current_exception();
    done_ = true;
    return;
  }

  const Time next = global_next_event_time();
  if (next > config_.deadline) {
    for (Simulator* d : domains_) d->advance_to(config_.deadline);
    done_ = true;
    return;
  }
  window_end_ = std::min(next + config_.lookahead,
                         config_.deadline + Time::nanoseconds(1));
}

}  // namespace incast::sim
