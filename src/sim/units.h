// Strong types for data rates and data sizes.
//
// Keeping Bandwidth distinct from plain numbers (and from Time) makes the
// conversion points explicit: the only way to turn bytes into time is
// Bandwidth::serialization_time, and the only way to turn time into bytes is
// Bandwidth::bytes_in — both of which are the physics of a link.
#ifndef INCAST_SIM_UNITS_H_
#define INCAST_SIM_UNITS_H_

#include <compare>
#include <cstdint>
#include <string>

#include "sim/time.h"

namespace incast::sim {

// A data rate in bits per second.
class Bandwidth {
 public:
  constexpr Bandwidth() noexcept = default;

  [[nodiscard]] static constexpr Bandwidth bits_per_second(std::int64_t bps) noexcept {
    return Bandwidth{bps};
  }
  [[nodiscard]] static constexpr Bandwidth kilobits_per_second(double kbps) noexcept {
    return Bandwidth{static_cast<std::int64_t>(kbps * 1e3)};
  }
  [[nodiscard]] static constexpr Bandwidth megabits_per_second(double mbps) noexcept {
    return Bandwidth{static_cast<std::int64_t>(mbps * 1e6)};
  }
  [[nodiscard]] static constexpr Bandwidth gigabits_per_second(double gbps) noexcept {
    return Bandwidth{static_cast<std::int64_t>(gbps * 1e9)};
  }
  [[nodiscard]] static constexpr Bandwidth zero() noexcept { return Bandwidth{0}; }

  [[nodiscard]] constexpr std::int64_t bps() const noexcept { return bps_; }
  [[nodiscard]] constexpr double mbps() const noexcept { return static_cast<double>(bps_) * 1e-6; }
  [[nodiscard]] constexpr double gbps() const noexcept { return static_cast<double>(bps_) * 1e-9; }

  // Time to serialize `bytes` onto a link of this rate.
  [[nodiscard]] constexpr Time serialization_time(std::int64_t bytes) const noexcept {
    // bytes * 8 bits / (bps bits/sec) seconds, in ns. The intermediate
    // product is 128-bit: the int64 form overflows past ~1.07 GB, which
    // aggregate sizes (e.g. a whole incast's worth of wire bytes in the
    // scaling experiment's optimal-FCT math) do reach. Identical results
    // for every non-overflowing input.
    return Time::nanoseconds(static_cast<std::int64_t>(
        static_cast<__int128>(bytes) * 8 * 1'000'000'000 / bps_));
  }

  // Bytes transferred over `duration` at this rate.
  [[nodiscard]] constexpr std::int64_t bytes_in(Time duration) const noexcept {
    // (bps / 8) bytes/sec * ns / 1e9. Multiply with doubles to avoid
    // overflow on long durations at high rates.
    return static_cast<std::int64_t>(static_cast<double>(bps_) / 8.0 * duration.sec());
  }

  constexpr auto operator<=>(const Bandwidth&) const noexcept = default;

  [[nodiscard]] friend constexpr Bandwidth operator*(Bandwidth b, double k) noexcept {
    return Bandwidth{static_cast<std::int64_t>(static_cast<double>(b.bps_) * k)};
  }
  [[nodiscard]] friend constexpr double operator/(Bandwidth a, Bandwidth b) noexcept {
    return static_cast<double>(a.bps_) / static_cast<double>(b.bps_);
  }

  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr Bandwidth(std::int64_t bps) noexcept : bps_{bps} {}

  std::int64_t bps_{0};
};

// The bandwidth-delay product in bytes: how much data must be in flight to
// keep a path of rate `bw` and round-trip time `rtt` fully utilized.
[[nodiscard]] constexpr std::int64_t bandwidth_delay_product_bytes(Bandwidth bw,
                                                                   Time rtt) noexcept {
  return bw.bytes_in(rtt);
}

}  // namespace incast::sim

#endif  // INCAST_SIM_UNITS_H_
