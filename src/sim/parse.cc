#include "sim/parse.h"

#include <cctype>
#include <charconv>
#include <string>

namespace incast::sim {

namespace {

// Splits "<number><unit>", tolerating whitespace; returns false when the
// number is malformed or either part is empty.
bool split_value_unit(std::string_view text, double& value, std::string& unit) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  if (text.empty()) return false;

  std::size_t i = 0;
  while (i < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[i])) || text[i] == '.' ||
          text[i] == '-' || text[i] == '+')) {
    ++i;
  }
  const std::string_view number = text.substr(0, i);
  std::string_view rest = text.substr(i);
  while (!rest.empty() && std::isspace(static_cast<unsigned char>(rest.front()))) {
    rest.remove_prefix(1);
  }
  if (number.empty() || rest.empty()) return false;

  const auto [ptr, ec] =
      std::from_chars(number.data(), number.data() + number.size(), value);
  if (ec != std::errc{} || ptr != number.data() + number.size()) return false;

  unit.clear();
  for (const char c : rest) {
    unit.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return true;
}

}  // namespace

std::optional<Time> parse_time(std::string_view text) {
  double value = 0.0;
  std::string unit;
  if (!split_value_unit(text, value, unit)) {
    // A bare zero needs no unit: "--flap-duration 0" means none.
    if (text == "0") return Time::zero();
    return std::nullopt;
  }

  if (unit == "ns") return Time::nanoseconds(static_cast<std::int64_t>(value));
  if (unit == "us") return Time::microseconds(value);
  if (unit == "ms") return Time::milliseconds(value);
  if (unit == "s") return Time::seconds(value);
  return std::nullopt;
}

std::optional<Bandwidth> parse_bandwidth(std::string_view text) {
  double value = 0.0;
  std::string unit;
  if (!split_value_unit(text, value, unit)) return std::nullopt;

  if (unit == "bps") return Bandwidth::bits_per_second(static_cast<std::int64_t>(value));
  if (unit == "kbps") return Bandwidth::kilobits_per_second(value);
  if (unit == "mbps") return Bandwidth::megabits_per_second(value);
  if (unit == "gbps") return Bandwidth::gigabits_per_second(value);
  return std::nullopt;
}

}  // namespace incast::sim
