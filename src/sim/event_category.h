// EventCategory: coarse buckets for event-loop self-profiling.
//
// Every scheduled event carries a category so the kernel can count (and,
// when profiling is enabled, wall-time) dispatches per subsystem without
// any per-component instrumentation. Categories are deliberately coarse —
// one per library layer — so the tag is a compile-time constant at every
// schedule site and the accounting is a single array increment.
#ifndef INCAST_SIM_EVENT_CATEGORY_H_
#define INCAST_SIM_EVENT_CATEGORY_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace incast::sim {

enum class EventCategory : std::uint8_t {
  kGeneric = 0,   // untagged / test / driver glue
  kNet,           // link serialization, propagation, switch forwarding
  kTcp,           // RTO, TLP, pacing timers
  kWorkload,      // burst scheduling, app data arrival
  kTelemetry,     // samplers, queue monitors
  kFault,         // fault injector flaps and delayed deliveries
};

inline constexpr std::size_t kNumEventCategories = 6;

using EventCategoryCounts = std::array<std::uint64_t, kNumEventCategories>;

[[nodiscard]] constexpr const char* to_string(EventCategory c) noexcept {
  switch (c) {
    case EventCategory::kGeneric: return "generic";
    case EventCategory::kNet: return "net";
    case EventCategory::kTcp: return "tcp";
    case EventCategory::kWorkload: return "workload";
    case EventCategory::kTelemetry: return "telemetry";
    case EventCategory::kFault: return "fault";
  }
  return "?";
}

}  // namespace incast::sim

#endif  // INCAST_SIM_EVENT_CATEGORY_H_
