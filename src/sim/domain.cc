#include "sim/domain.h"

namespace incast::sim {

std::size_t window_hist_bucket(std::uint64_t events_in_window) noexcept {
  if (events_in_window == 0) return 0;
  std::size_t bucket = 1;
  while (events_in_window > 1 && bucket + 1 < kWindowHistBuckets) {
    events_in_window >>= 1U;
    ++bucket;
  }
  return bucket;
}

}  // namespace incast::sim
