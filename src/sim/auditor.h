// Auditor: always-on invariant checking for simulation runs.
//
// Long unattended sweeps are only trustworthy if the simulator checks its
// own bookkeeping while it runs. The Auditor is a small, allocation-free
// observer that components feed from a handful of hot-path hooks:
//
//   * byte conservation — every byte a host injects must be delivered to a
//     host, dropped by a queue / link / switch, or still buffered in the
//     network at teardown (check_conservation receives the residual);
//   * non-negative queue depths and in-flight (wire) byte accounting;
//   * monotonic simulated time in the event loop;
//   * cwnd / RTO within configured sanity bounds;
//   * a livelock watchdog — N consecutive events without simulated time
//     advancing means some component is rescheduling itself at now().
//
// Modes: relaxed (the default) counts violations into counters that the
// observability layer exports as sim.audit.* metrics; strict throws
// AuditFailure on the first violation, aborting the run deterministically
// (the CLI maps it to its own exit code, and the sweep layer quarantines
// just that task). The Auditor also carries the per-run execution budgets
// (event count, wall clock) and the cooperative cancellation flag; all
// three abort by throwing from the dispatch hook.
//
// Layered switches, mirroring the obs spine: compile out every hook with
// -DINCAST_AUDIT=OFF (the INCAST_AUDITOR macro becomes a constant nullptr,
// so instrumented call sites dead-code-eliminate); at runtime, a simulator
// with no auditor attached costs one predictable branch per hook.
//
// Wall-clock budget and cancellation peek at the host clock, but they can
// only abort a run, never steer it — determinism of completed runs is
// unaffected.
#ifndef INCAST_SIM_AUDITOR_H_
#define INCAST_SIM_AUDITOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

#include "sim/time.h"

// Compile-time master switch. Build with -DINCAST_AUDIT_ENABLED=0 (cmake
// -DINCAST_AUDIT=OFF) to dead-code-eliminate every audit hook.
#ifndef INCAST_AUDIT_ENABLED
#define INCAST_AUDIT_ENABLED 1
#endif

#if INCAST_AUDIT_ENABLED
#define INCAST_AUDITOR(simulator) ((simulator).auditor())
#else
#define INCAST_AUDITOR(simulator) (static_cast<::incast::sim::Auditor*>(nullptr))
#endif

namespace incast::sim {

// Thrown by strict-mode audits. Carries the invariant name so the sweep
// layer can classify the failure without parsing the message.
class AuditFailure : public std::runtime_error {
 public:
  AuditFailure(const char* invariant, const std::string& detail)
      : std::runtime_error{std::string{"audit["} + invariant + "]: " + detail},
        invariant_{invariant} {}
  [[nodiscard]] const char* invariant() const noexcept { return invariant_; }

 private:
  const char* invariant_;
};

// Thrown when a per-run execution budget (events or wall clock) runs out.
class BudgetExceeded : public std::runtime_error {
 public:
  explicit BudgetExceeded(const std::string& detail)
      : std::runtime_error{"budget exceeded: " + detail} {}
};

// Thrown when the cooperative cancellation flag is observed set (SIGINT /
// SIGTERM in the CLI). The sweep layer records the task as cancelled.
class RunCancelled : public std::runtime_error {
 public:
  RunCancelled() : std::runtime_error{"run cancelled"} {}
};

// Every invariant the auditor checks, indexing the violation counters.
enum class AuditInvariant : std::uint8_t {
  kConservation = 0,  // injected != delivered + dropped + residual
  kNegativeDepth,     // queue packets/bytes or wire bytes went negative
  kTimeMonotonic,     // event dispatched with timestamp < now()
  kCwndBounds,        // cwnd non-positive or above the sanity cap
  kRtoBounds,         // RTO below min_rto or above the sanity cap
  kLivelock,          // too many events without sim-time advance
  kFlowBreakdown,     // FCT attribution components do not sum to the FCT
  kLookahead,         // cross-domain event landed inside a completed window
};
inline constexpr std::size_t kNumAuditInvariants = 8;

[[nodiscard]] const char* to_string(AuditInvariant inv) noexcept;

// How an experiment runs the auditor. kRelaxed observes — violations are
// counted but the run is never perturbed, so results stay byte-identical
// to an unaudited run. kStrict aborts on the first violation. kOff
// attaches no auditor at all (and -DINCAST_AUDIT=OFF forces every mode to
// behave as kOff).
enum class AuditMode : std::uint8_t { kOff = 0, kRelaxed, kStrict };

[[nodiscard]] const char* to_string(AuditMode mode) noexcept;

// Parses "off" / "relaxed" / "strict" (the CLI --audit grammar).
[[nodiscard]] bool parse_audit_mode(const std::string& text, AuditMode& out) noexcept;

class Auditor {
 public:
  struct Config {
    // strict: throw AuditFailure on the first violation. relaxed (false):
    // count violations and keep running.
    bool strict{false};

    // Livelock watchdog: violate after at least this many consecutive
    // events without a sim-time advance. Detection is window-granular —
    // the check compares timestamps at successive 8192-event periodic
    // boundaries, so it fires between `limit` and `limit + 2*8192` stuck
    // events (keeping the per-event hot path store-free). Generous: even a
    // 100k-flow incast schedules far fewer same-timestamp events than this.
    std::uint64_t livelock_event_limit{1'000'000};

    // Sanity bounds for the TCP hooks. max_cwnd_bytes 0 disables the upper
    // cwnd check (cwnd > 0 is always checked).
    std::int64_t max_cwnd_bytes{1'000'000'000};
    Time min_rto{Time::zero()};               // zero = no lower bound check
    Time max_rto{Time::seconds(120)};         // Linux's TCP_RTO_MAX

    // Per-run execution budgets; 0 disables. Wall clock is only sampled
    // every kPeriodicCheckMask+1 events, so the effective wall budget is
    // slightly coarse — it exists to unwedge runaway tasks, not to time.
    std::uint64_t max_events{0};
    double max_wall_ms{0.0};

    // Cooperative cancellation: when set and *cancel becomes true, the
    // next periodic check throws RunCancelled. Must outlive the auditor.
    const std::atomic<bool>* cancel{nullptr};
  };

  // One violation, as handed to the sink callback (relaxed and strict).
  struct Violation {
    AuditInvariant invariant;
    std::string detail;
  };
  using ViolationSink = std::function<void(const Violation&)>;

  Auditor() noexcept { arm_check_countdown(); }
  explicit Auditor(const Config& config) noexcept : config_{config} {
    arm_check_countdown();
  }
  Auditor(const Auditor&) = delete;
  Auditor& operator=(const Auditor&) = delete;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

  // Observes every violation before strict mode throws; the experiment
  // layer uses this to route a structured diagnostic into the flight
  // recorder. Keep the sink cheap: it runs inline on the violating path.
  void set_violation_sink(ViolationSink sink) { sink_ = std::move(sink); }

  // --- Event-loop hook (called by Simulator::dispatch_one) ----------------

  // `now` is the loop's current time, `at` the timestamp of the event about
  // to run. Checks monotonicity, the livelock watchdog, and the budgets.
  //
  // This runs once per simulated event, so it is budgeted in fractions of a
  // nanosecond (BM_AuditorOverhead gates it at <= 3% of raw dispatch): the
  // event counter, the event budget, and the periodic wall/cancel check are
  // fused into one pre-armed countdown, leaving a single decrement-and-
  // branch on the hot path; everything slow lives in check_boundary().
  void on_dispatch(Time now, Time at) {
    const std::int64_t at_ns = at.ns();
    if (at_ns < now.ns()) [[unlikely]] {
      violate_nonmonotonic(now.ns(), at_ns);
    }
    if (--check_countdown_ == 0) [[unlikely]] {
      check_boundary(at_ns);
    }
  }

  // --- Conservation accounting (called by net::Host / net::Port) ----------

  // A host handed a fresh packet to its NIC (or the fault layer duplicated
  // one in flight — a duplicate is a new injection at the duplication
  // point, so the ledger stays balanced).
  void on_bytes_injected(std::int64_t bytes) noexcept {
    injected_bytes_ += bytes;
    ++injected_packets_;
  }
  // A packet reached a host NIC (corrupt and unclaimed arrivals included —
  // the wire delivered them; what the host does next is its business).
  void on_bytes_delivered(std::int64_t bytes) noexcept {
    delivered_bytes_ += bytes;
    ++delivered_packets_;
  }
  // A packet died: queue overflow, link fault, or switch blackhole.
  void on_bytes_dropped(std::int64_t bytes) noexcept {
    dropped_bytes_ += bytes;
    ++dropped_packets_;
  }
  // A trimming queue cut a packet's payload: `bytes` is the wire size
  // removed (original size minus the surviving header). The header travels
  // on and is delivered/dropped like any packet, so trimmed bytes are their
  // own conservation bucket.
  void on_bytes_trimmed(std::int64_t bytes) noexcept {
    trimmed_bytes_ += bytes;
    ++trimmed_packets_;
  }
  // A node emitted a MAC control frame (PFC pause/resume) onto a link.
  // Control frames are injected mid-network and consumed by the immediate
  // neighbor, so they get a ledger separate from host traffic.
  void on_control_injected(std::int64_t bytes) noexcept {
    control_injected_bytes_ += bytes;
    ++control_frames_;
  }
  // The neighbor consumed a control frame (applied the pause/resume).
  void on_control_consumed(std::int64_t bytes) noexcept {
    control_consumed_bytes_ += bytes;
  }

  // Depth sample from a queue or a port's wire ledger; negative values are
  // accounting corruption. `where` names the component for the diagnostic.
  void record_depth(const char* where, std::int64_t packets, std::int64_t bytes) {
    if (packets < 0 || bytes < 0) [[unlikely]] {
      violate(AuditInvariant::kNegativeDepth,
              std::string{where} + ": packets=" + std::to_string(packets) +
                  " bytes=" + std::to_string(bytes));
    }
  }

  // --- TCP hooks (called by tcp::TcpSender) -------------------------------

  void check_cwnd(std::uint64_t flow, std::int64_t cwnd_bytes) {
    if (cwnd_bytes <= 0 ||
        (config_.max_cwnd_bytes > 0 && cwnd_bytes > config_.max_cwnd_bytes))
        [[unlikely]] {
      violate(AuditInvariant::kCwndBounds,
              "flow " + std::to_string(flow) + ": cwnd=" + std::to_string(cwnd_bytes) +
                  " bytes (bounds (0, " + std::to_string(config_.max_cwnd_bytes) + "])");
    }
  }

  void check_rto(std::uint64_t flow, Time rto) {
    if (rto < config_.min_rto || rto > config_.max_rto) [[unlikely]] {
      violate(AuditInvariant::kRtoBounds,
              "flow " + std::to_string(flow) + ": rto=" + std::to_string(rto.ns()) +
                  "ns (bounds [" + std::to_string(config_.min_rto.ns()) + ", " +
                  std::to_string(config_.max_rto.ns()) + "]ns)");
    }
  }

  // --- Flow-trace hook (called by experiments after FlowTracer::finalize) --

  // The tail-autopsy conservation invariant: a sampled flow's attribution
  // components must sum to its measured FCT *exactly* (integer ns). Any
  // difference means the tracer dropped or double-counted an interval.
  void check_flow_breakdown(std::uint64_t flow, std::int64_t component_sum_ns,
                            std::int64_t fct_ns) {
    if (component_sum_ns != fct_ns || fct_ns < 0) [[unlikely]] {
      violate(AuditInvariant::kFlowBreakdown,
              "flow " + std::to_string(flow) + ": components sum to " +
                  std::to_string(component_sum_ns) + "ns but fct=" +
                  std::to_string(fct_ns) + "ns");
    }
  }

  // --- Parallel-engine hooks (called by net::DomainBridge / core) ---------

  // A mailbox entry surfaced at a barrier with a timestamp inside the
  // window that just finished executing: the conservative contract
  // (arrival >= window end) was broken, which means the configured
  // lookahead exceeds some inter-domain link's real propagation delay.
  // Strict mode aborts the run; relaxed mode counts it (the result is then
  // *not* decomposition-invariant and the counter says so).
  void report_lookahead(std::int64_t entry_ns, std::int64_t window_end_ns) {
    violate(AuditInvariant::kLookahead,
            "cross-domain event at " + std::to_string(entry_ns) +
                "ns inside completed window ending " +
                std::to_string(window_end_ns) + "ns");
  }

  // Folds another auditor's counters into this one. The parallel engine
  // runs one auditor per domain (hot-path hooks must not share cache
  // lines) and merges them into the coordinator's auditor at teardown,
  // before check_conservation — so strict audit stays exact across the
  // whole fabric. Budgets/watchdogs of `other` are not merged; they are
  // per-domain concerns.
  void merge_from(const Auditor& other) noexcept {
    for (std::size_t i = 0; i < kNumAuditInvariants; ++i) {
      violations_[i] += other.violations_[i];
    }
    injected_bytes_ += other.injected_bytes_;
    delivered_bytes_ += other.delivered_bytes_;
    dropped_bytes_ += other.dropped_bytes_;
    injected_packets_ += other.injected_packets_;
    delivered_packets_ += other.delivered_packets_;
    dropped_packets_ += other.dropped_packets_;
    trimmed_bytes_ += other.trimmed_bytes_;
    trimmed_packets_ += other.trimmed_packets_;
    control_injected_bytes_ += other.control_injected_bytes_;
    control_consumed_bytes_ += other.control_consumed_bytes_;
    control_frames_ += other.control_frames_;
    events_seen_ += other.events_seen();
  }

  // --- Teardown -----------------------------------------------------------

  // End-of-run conservation check. `residual_bytes` is what is still
  // buffered in the network (queue bytes + in-flight wire bytes, summed
  // over every link — see net::residual_buffered_bytes). The full ledger:
  //
  //   injected + control_injected ==
  //       delivered + control_consumed + dropped + trimmed + residual
  void check_conservation(std::int64_t residual_bytes);

  // --- Counters (exported as sim.audit.* metrics by the obs layer) --------

  [[nodiscard]] std::uint64_t violations(AuditInvariant inv) const noexcept {
    return violations_[static_cast<std::size_t>(inv)];
  }
  [[nodiscard]] std::uint64_t total_violations() const noexcept {
    std::uint64_t total = 0;
    for (const std::uint64_t v : violations_) total += v;
    return total;
  }
  [[nodiscard]] std::int64_t injected_bytes() const noexcept { return injected_bytes_; }
  [[nodiscard]] std::int64_t delivered_bytes() const noexcept { return delivered_bytes_; }
  [[nodiscard]] std::int64_t dropped_bytes() const noexcept { return dropped_bytes_; }
  [[nodiscard]] std::int64_t injected_packets() const noexcept { return injected_packets_; }
  [[nodiscard]] std::int64_t delivered_packets() const noexcept { return delivered_packets_; }
  [[nodiscard]] std::int64_t dropped_packets() const noexcept { return dropped_packets_; }
  [[nodiscard]] std::int64_t trimmed_bytes() const noexcept { return trimmed_bytes_; }
  [[nodiscard]] std::int64_t trimmed_packets() const noexcept { return trimmed_packets_; }
  [[nodiscard]] std::int64_t control_injected_bytes() const noexcept {
    return control_injected_bytes_;
  }
  [[nodiscard]] std::int64_t control_consumed_bytes() const noexcept {
    return control_consumed_bytes_;
  }
  [[nodiscard]] std::int64_t control_frames() const noexcept { return control_frames_; }
  // Exact mid-run: the base counter advances only at countdown boundaries,
  // so the in-flight chunk is reconstructed from the countdown itself.
  [[nodiscard]] std::uint64_t events_seen() const noexcept {
    return events_seen_ + (check_countdown_len_ - check_countdown_);
  }

 private:
  // Wall/cancel checks run every 8192 events: cheap enough to be always on,
  // frequent enough to unwedge a stuck task within a fraction of a second.
  static constexpr std::uint64_t kPeriodicCheckMask = 8191;

  // Records the violation, feeds the sink, and throws in strict mode.
  void violate(AuditInvariant inv, std::string detail);
  // Cold halves of on_dispatch, outlined so the hot path stays a handful of
  // instructions (string formatting inline there defeats inlining and costs
  // registers on every event).
  void violate_nonmonotonic(std::int64_t now_ns, std::int64_t at_ns);
  void violate_livelock(std::int64_t at_ns);
  void periodic_check();
  // Countdown expiry: folds the finished chunk into events_seen_, enforces
  // the event budget exactly, and — when the expiry landed on a
  // kPeriodicCheckMask boundary — runs the livelock window compare and the
  // periodic wall/cancel check, then re-arms.
  void check_boundary(std::int64_t at_ns);
  void arm_check_countdown() noexcept;

  Config config_;
  ViolationSink sink_;

  std::uint64_t violations_[kNumAuditInvariants]{};

  std::int64_t injected_bytes_{0};
  std::int64_t delivered_bytes_{0};
  std::int64_t dropped_bytes_{0};
  std::int64_t injected_packets_{0};
  std::int64_t delivered_packets_{0};
  std::int64_t dropped_packets_{0};
  std::int64_t trimmed_bytes_{0};
  std::int64_t trimmed_packets_{0};
  std::int64_t control_injected_bytes_{0};
  std::int64_t control_consumed_bytes_{0};
  std::int64_t control_frames_{0};

  std::uint64_t events_seen_{0};
  // Livelock window state: the timestamp seen at the previous periodic
  // boundary, and how many consecutive boundaries it has not advanced.
  std::int64_t boundary_ns_{-1};
  std::uint64_t stuck_windows_{0};
  // Calls remaining until check_boundary(); armed to the nearer of the next
  // periodic boundary and the event-budget edge. len is the armed value,
  // kept so events_seen() stays exact between boundaries.
  std::uint64_t check_countdown_{0};
  std::uint64_t check_countdown_len_{0};

  // Wall-budget start, captured lazily at the first periodic check (steady
  // clock nanoseconds; 0 = not yet captured).
  std::uint64_t wall_start_ns_{0};
};

}  // namespace incast::sim

#endif  // INCAST_SIM_AUDITOR_H_
