#include "sim/simulator.h"

#include <cassert>
#include <chrono>
#include <utility>

namespace incast::sim {

EventId Simulator::schedule_at(Time at, Callback cb, EventCategory category) {
  assert(at >= now_ && "cannot schedule into the past");
  if (keyed_) {
    // Ambient lane: keyed mode must never mix insertion-counter pushes
    // with keyed pushes (the number spaces are unrelated), so unkeyed
    // schedules draw from lane 0's private counter instead.
    return queue_.push_keyed(at, ambient_key_++, std::move(cb), category);
  }
  return queue_.push(at, std::move(cb), category);
}

EventId Simulator::schedule_at_keyed(Time at, std::uint64_t key, Callback cb,
                                     EventCategory category) {
  assert(at >= now_ && "cannot schedule into the past");
  if (keyed_) return queue_.push_keyed(at, key, std::move(cb), category);
  return queue_.push(at, std::move(cb), category);
}

void Simulator::dispatch_one() {
  auto ev = queue_.pop();
  assert(ev.at >= now_);
#if INCAST_AUDIT_ENABLED
  // Monotonic-time check, livelock watchdog, and execution budgets. May
  // throw (strict violation / budget / cancellation); the event is then
  // lost, which is fine — an aborted run's partial state is never used.
  if (auditor_ != nullptr) auditor_->on_dispatch(now_, ev.at);
#endif
  now_ = ev.at;
  ++events_processed_;
  ++events_by_category_[static_cast<std::size_t>(ev.category)];
  if (profiling_) {
    const auto t0 = std::chrono::steady_clock::now();
    ev.cb();
    const auto t1 = std::chrono::steady_clock::now();
    wall_ns_by_category_[static_cast<std::size_t>(ev.category)] +=
        std::chrono::duration<double, std::nano>(t1 - t0).count();
  } else {
    ev.cb();
  }
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    dispatch_one();
  }
}

void Simulator::run_until(Time deadline) {
  stopped_ = false;
  while (!stopped_) {
    const Time next = queue_.next_time();
    if (next > deadline) break;
    dispatch_one();
  }
  if (!stopped_ && now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace incast::sim
