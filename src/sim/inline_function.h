// InlineFunction: the kernel's allocation-free callback type.
//
// A move-only callable wrapper with fixed inline storage and no heap
// fallback: a capture that does not fit the budget is a compile error, not a
// silent allocation. This is the whole point — std::function's small-buffer
// optimization keeps the fast path only until someone captures one field too
// many, and then every scheduled event costs a malloc/free pair. Here the
// budget is part of the schedule_in() contract (docs/PERFORMANCE.md): hot
// paths capture `this` plus a few scalars, and anything bigger (a Packet,
// say) lives in a pool and is captured as a handle.
//
// Dispatch is one indirect call through a per-type operations table; moving
// an InlineFunction relocates the capture with the erased type's move
// constructor, so non-trivial captures (std::function members, strings in
// cold-path closures) remain correct.
#ifndef INCAST_SIM_INLINE_FUNCTION_H_
#define INCAST_SIM_INLINE_FUNCTION_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace incast::sim {

class InlineFunction {
 public:
  // Inline capture budget, in bytes. Sized for the fattest legitimate hot
  // capture in the tree (`this` + a handful of scalars / a Time / a
  // std::function forwarded by a test) with headroom; one 64-byte cache
  // line keeps a 4-ary heap dispatch touching at most two lines per event.
  static constexpr std::size_t kCaptureBudget = 64;

  InlineFunction() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, InlineFunction> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    static_assert(sizeof(Fn) <= kCaptureBudget,
                  "capture exceeds the inline budget: pool the payload and "
                  "capture a handle instead (see docs/PERFORMANCE.md)");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned captures are not supported");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "captures must be nothrow-movable: the kernel relocates "
                  "callbacks when the slab grows");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    ops_ = &ops_for<Fn>;
  }

  InlineFunction(InlineFunction&& other) noexcept : ops_{other.ops_} {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  // Invokes the stored callable. Precondition: engaged.
  void operator()() { ops_->call(storage_); }

 private:
  struct Ops {
    void (*call)(void* self);
    // Move-construct dst from src, then destroy src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* self) noexcept;
  };

  template <typename Fn>
  static constexpr Ops ops_for{
      [](void* self) { (*static_cast<Fn*>(self))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
      [](void* self) noexcept { static_cast<Fn*>(self)->~Fn(); },
  };

  alignas(std::max_align_t) std::byte storage_[kCaptureBudget];
  const Ops* ops_{nullptr};
};

}  // namespace incast::sim

#endif  // INCAST_SIM_INLINE_FUNCTION_H_
