// EventQueue: the pending-event set of the discrete-event kernel.
//
// A binary heap ordered by (time, sequence number). The sequence number is a
// monotonically increasing insertion counter, which makes event ordering at
// equal timestamps deterministic (FIFO) — essential for reproducible runs.
// Cancellation is lazy: cancelled ids are remembered and skipped at pop time.
#ifndef INCAST_SIM_EVENT_QUEUE_H_
#define INCAST_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/event_category.h"
#include "sim/time.h"

namespace incast::sim {

// Identifies a scheduled event for cancellation. Ids are never reused.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `cb` to run at absolute time `at`. Returns an id usable with
  // cancel(). Scheduling into the past is the caller's bug; the queue will
  // still pop events in heap order, so the kernel asserts on it instead.
  EventId push(Time at, Callback cb,
               EventCategory category = EventCategory::kGeneric) {
    const EventId id = next_id_++;
    heap_.push(Entry{at, id, category, std::move(cb)});
    pending_.insert(id);
    return id;
  }

  // Cancels a pending event. Cancelling an id that already fired (or was
  // already cancelled) is a harmless no-op — this is what timer code wants.
  void cancel(EventId id) {
    if (id == kInvalidEventId) return;
    if (pending_.erase(id) > 0) {
      cancelled_.insert(id);
    }
  }

  [[nodiscard]] bool empty() const noexcept { return pending_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return pending_.size(); }

  // Time of the next non-cancelled event; Time::infinity() if none.
  [[nodiscard]] Time next_time() {
    skip_cancelled();
    return heap_.empty() ? Time::infinity() : heap_.top().at;
  }

  // Pops the next non-cancelled event. Precondition: !empty().
  struct Popped {
    Time at;
    EventId id;
    EventCategory category;
    Callback cb;
  };
  Popped pop() {
    skip_cancelled();
    // const_cast to move the callback out: priority_queue::top() is const,
    // but we are about to pop the entry, so mutating it is safe.
    auto& top = const_cast<Entry&>(heap_.top());
    Popped out{top.at, top.id, top.category, std::move(top.cb)};
    heap_.pop();
    pending_.erase(out.id);
    return out;
  }

 private:
  struct Entry {
    Time at;
    EventId id;
    EventCategory category;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };

  void skip_cancelled() {
    while (!heap_.empty()) {
      auto it = cancelled_.find(heap_.top().id);
      if (it == cancelled_.end()) break;
      cancelled_.erase(it);
      heap_.pop();
    }
  }

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  // Ids scheduled and not yet fired or cancelled. Tracking pending ids
  // (rather than a live counter) makes cancel() of an already-fired id a
  // true no-op, as the contract promises.
  std::unordered_set<EventId> pending_;
  std::unordered_set<EventId> cancelled_;
  EventId next_id_{1};
};

}  // namespace incast::sim

#endif  // INCAST_SIM_EVENT_QUEUE_H_
