// EventQueue: the pending-event set of the discrete-event kernel.
//
// Layout is chosen so that steady-state dispatch performs zero heap
// allocations and zero hash-table operations:
//
//  * The heap is a cache-friendly 4-ary implicit heap whose entries are
//    24-byte PODs (Time, seq, slot). Sift operations move these small
//    entries, never the callbacks.
//  * Callbacks (allocation-free sim::InlineFunction) and their category live
//    in a free-listed slab indexed by `slot`. A slot is written once at
//    push() and read once at pop(); it never moves while scheduled.
//  * Ordering is (time, seq) with seq a monotonically increasing insertion
//    counter, which makes event ordering at equal timestamps deterministic
//    (FIFO) — essential for reproducible runs.
//  * Cancellation is generation-stamped: an EventId encodes (slot,
//    generation), and the generation bumps every time a slot is freed.
//    cancel() of an id whose event already fired (or was already cancelled)
//    sees a stale generation and is a true no-op — the contract TCP timer
//    code relies on. A cancelled slot releases its callback immediately;
//    its heap entry is skipped lazily when it surfaces at the root.
//
// Steady state (push/cancel/pop at a stable depth) touches only the heap
// vector and the slab vector — no allocation, no hashing, no node churn.
#ifndef INCAST_SIM_EVENT_QUEUE_H_
#define INCAST_SIM_EVENT_QUEUE_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_category.h"
#include "sim/inline_function.h"
#include "sim/time.h"

namespace incast::sim {

// Identifies a scheduled event for cancellation: (slot index + 1) in the
// upper 32 bits, slot generation in the lower 32. Ids are unique among
// pending events, and a slot's generation changes whenever it is reused, so
// a stale id can never cancel a later event that happens to occupy the same
// slot.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Callback = InlineFunction;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Pre-sizes the heap and slab for `n` concurrently pending events, so a
  // simulation whose peak depth is known up front (hosts x flows x a few
  // timers) never grows either on its hot path.
  void reserve(std::size_t n) {
    heap_.reserve(n);
    slots_.reserve(n);
  }

  // Schedules `cb` to run at absolute time `at`. Returns an id usable with
  // cancel(). Scheduling into the past is the caller's bug; the queue will
  // still pop events in heap order, so the kernel asserts on it instead.
  EventId push(Time at, Callback cb,
               EventCategory category = EventCategory::kGeneric) {
    return push_with_seq(at, next_seq_++, std::move(cb), category);
  }

  // Schedules `cb` with an explicit tie-break key instead of the queue's
  // insertion counter. The parallel engine uses this to impose one global
  // (time, key) order across per-domain queues: keys are composed from
  // per-entity lanes (sim/domain.h), so equal-time ordering is independent
  // of which queue an event lands in. A queue must not mix push() and
  // push_keyed() — the insertion counter and external keys draw from
  // unrelated number spaces, so interleaving them would make equal-time
  // order depend on scheduling history. Simulator enforces this by routing
  // every push through one mode or the other.
  EventId push_keyed(Time at, std::uint64_t key, Callback cb,
                     EventCategory category = EventCategory::kGeneric) {
    return push_with_seq(at, key, std::move(cb), category);
  }

  // Cancels a pending event. Cancelling an id that already fired (or was
  // already cancelled) is a harmless no-op — this is what timer code wants.
  // The callback is released immediately; the heap entry is skipped lazily.
  void cancel(EventId id) {
    const std::uint64_t slot_plus_1 = id >> 32;
    if (slot_plus_1 == 0 || slot_plus_1 > slots_.size()) return;
    const auto slot = static_cast<std::uint32_t>(slot_plus_1 - 1);
    Slot& s = slots_[slot];
    if (!s.live || s.generation != static_cast<std::uint32_t>(id)) return;
    s.live = false;
    s.cb.reset();
    --live_;
  }

  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  // Time of the next non-cancelled event; Time::infinity() if none.
  // Logically const: skipping already-cancelled heap entries compacts
  // internal storage but never changes the observable event sequence.
  [[nodiscard]] Time next_time() const {
    skip_cancelled();
    return heap_.empty() ? Time::infinity() : heap_.front().at;
  }

  // Pops the next non-cancelled event. Precondition: !empty().
  struct Popped {
    Time at;
    EventId id;
    EventCategory category;
    Callback cb;
  };
  Popped pop() {
    skip_cancelled();
    assert(!heap_.empty() && "pop() on an empty queue");
    const Entry top = heap_.front();
    pop_root();
    Slot& s = slots_[top.slot];
    Popped out{top.at, encode_id(top.slot, s.generation), s.category,
               std::move(s.cb)};
    release_slot(top.slot);
    --live_;
    return out;
  }

  // Peak heap depth since construction (cancelled-but-unpopped entries
  // included — they occupy real heap memory until they surface).
  [[nodiscard]] std::size_t peak_pending() const noexcept { return peak_pending_; }
  // Slab high-water mark: the most slots ever in existence, i.e. the peak
  // number of concurrently scheduled events the queue has sized itself for.
  [[nodiscard]] std::size_t slab_high_water() const noexcept { return slots_.size(); }
  // Bytes one slab slot occupies — multiply by slab_high_water() for the
  // event kernel's contribution to a memory budget.
  [[nodiscard]] static constexpr std::size_t slot_bytes() noexcept;

 private:
  // 24 bytes; sift operations shuffle these, never the callbacks. seq is
  // 64-bit so FIFO tie-breaking cannot wrap within any realistic run.
  struct Entry {
    Time at;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  static_assert(sizeof(Entry) <= 24, "heap entries are meant to stay small");

  struct Slot {
    Callback cb;
    std::uint32_t generation{0};
    std::uint32_t next_free{kNoSlot};
    EventCategory category{EventCategory::kGeneric};
    bool live{false};
  };

  static constexpr std::uint32_t kNoSlot = static_cast<std::uint32_t>(-1);

  [[nodiscard]] static EventId encode_id(std::uint32_t slot,
                                         std::uint32_t generation) noexcept {
    return (static_cast<std::uint64_t>(slot) + 1) << 32 | generation;
  }

  EventId push_with_seq(Time at, std::uint64_t seq, Callback cb,
                        EventCategory category) {
    const std::uint32_t slot = acquire_slot();
    Slot& s = slots_[slot];
    s.cb = std::move(cb);
    s.category = category;
    s.live = true;
    heap_.push_back(Entry{at, seq, slot});
    sift_up(heap_.size() - 1);
    if (heap_.size() > peak_pending_) peak_pending_ = heap_.size();
    ++live_;
    return encode_id(slot, s.generation);
  }

  [[nodiscard]] std::uint32_t acquire_slot() {
    if (free_head_ != kNoSlot) {
      const std::uint32_t slot = free_head_;
      free_head_ = slots_[slot].next_free;
      return slot;
    }
    assert(slots_.size() < kNoSlot && "slab exhausted");
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void release_slot(std::uint32_t slot) noexcept {
    Slot& s = slots_[slot];
    ++s.generation;  // invalidates every id handed out for this occupancy
    s.live = false;
    s.next_free = free_head_;
    free_head_ = slot;
  }

  // Strict-weak order: earlier (time, seq) is dispatched first.
  [[nodiscard]] static bool before(const Entry& a, const Entry& b) noexcept {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i) noexcept {
    const Entry e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!before(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  // Removes the root: the last entry sifts down from the top.
  void pop_root() noexcept {
    const Entry e = heap_.back();
    heap_.pop_back();
    if (heap_.empty()) return;
    const std::size_t n = heap_.size();
    std::size_t i = 0;
    for (;;) {
      const std::size_t first_child = 4 * i + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t last_child = std::min(first_child + 4, n);
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], e)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }

  // Drops cancelled entries off the root so the front is a live event.
  // Const because peeking must be const for the Simulator's const
  // next_event_time(); the compaction is not observable behavior.
  void skip_cancelled() const {
    auto* self = const_cast<EventQueue*>(this);
    while (!heap_.empty()) {
      const Entry& top = heap_.front();
      if (slots_[top.slot].live) break;
      self->release_slot(top.slot);
      self->pop_root();
    }
  }

  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_{kNoSlot};
  std::uint64_t next_seq_{0};
  std::size_t live_{0};
  std::size_t peak_pending_{0};
};

constexpr std::size_t EventQueue::slot_bytes() noexcept { return sizeof(Slot); }

}  // namespace incast::sim

#endif  // INCAST_SIM_EVENT_QUEUE_H_
