// Simulator: the discrete-event loop.
//
// Single-threaded and deterministic: events at equal timestamps fire in
// scheduling order. All simulation components hold a Simulator& and schedule
// work through it; nothing in the simulation may consult wall-clock time.
//
// The hot path is allocation-free: callbacks are sim::InlineFunction (fixed
// inline capture budget, compile error on oversize), the pending set is a
// slab-backed 4-ary heap (sim/event_queue.h), and steady-state dispatch
// performs no heap allocations and no hash-table operations. Callers that
// know their peak event population can reserve_events() up front so the
// heap/slab never grow mid-run.
//
// Self-profiling: every event carries an EventCategory and the loop keeps an
// always-on per-category dispatch counter (a single array increment — see
// BM_TracerOverhead for the gate proving it is free). set_profiling(true)
// additionally buckets wall time per category; that one costs two clock
// reads per event, so it is opt-in.
//
// Observability: the loop optionally carries a borrowed obs::Hub pointer so
// components constructed against this Simulator can discover the hub without
// threading it through every constructor. The kernel itself never
// dereferences the hub — sim stays dependency-free of obs.
//
// Auditing: the loop likewise carries a borrowed Auditor pointer (see
// sim/auditor.h). With one attached, every dispatch feeds the monotonic-time
// check, the livelock watchdog, and the execution budgets; detached (the
// default) costs a single predictable branch, and -DINCAST_AUDIT=OFF
// removes even that.
#ifndef INCAST_SIM_SIMULATOR_H_
#define INCAST_SIM_SIMULATOR_H_

#include <array>
#include <cstdint>

#include "sim/auditor.h"
#include "sim/event_category.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace incast::obs {
class FlowTracer;
class Hub;
}  // namespace incast::obs

namespace incast::sim {

class Simulator {
 public:
  using Callback = EventQueue::Callback;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current simulated time. Advances only inside run()/run_until().
  [[nodiscard]] Time now() const noexcept { return now_; }

  // Capacity hint: pre-sizes the event heap and callback slab for `n`
  // concurrently pending events (typically hosts x flows x a small timer
  // factor), so steady state never grows either structure.
  void reserve_events(std::size_t n) { queue_.reserve(n); }

  // Timestamp of the next pending event; Time::infinity() when idle.
  [[nodiscard]] Time next_event_time() const { return queue_.next_time(); }

  // Schedules `cb` at absolute time `at` (must be >= now()).
  EventId schedule_at(Time at, Callback cb,
                      EventCategory category = EventCategory::kGeneric);

  // Schedules `cb` after `delay` (must be >= 0).
  EventId schedule_in(Time delay, Callback cb,
                      EventCategory category = EventCategory::kGeneric) {
    return schedule_at(now_ + delay, std::move(cb), category);
  }

  // Keyed scheduling for the parallel engine (sim/domain.h). In keyed mode
  // equal-time events fire in ascending `key` order — the caller composes
  // keys from per-entity lanes so the order is decomposition-invariant.
  // When keyed ordering is off (the default), the key is ignored and these
  // behave exactly like schedule_at/schedule_in, so shared component code
  // can call them unconditionally.
  EventId schedule_at_keyed(Time at, std::uint64_t key, Callback cb,
                            EventCategory category = EventCategory::kGeneric);
  EventId schedule_in_keyed(Time delay, std::uint64_t key, Callback cb,
                            EventCategory category = EventCategory::kGeneric) {
    return schedule_at_keyed(now_ + delay, key, std::move(cb), category);
  }

  // Switches equal-time tie-breaking from the insertion counter to explicit
  // keys. Must be called before any event is scheduled; from then on plain
  // schedule_at/schedule_in draw keys from the ambient lane (lane 0 —
  // setup-time scheduling only; see sim/domain.h).
  void enable_keyed_ordering() noexcept {
    assert(events_pending() == 0 && events_processed_ == 0 &&
           "keyed ordering must be chosen before any event is scheduled");
    keyed_ = true;
  }
  [[nodiscard]] bool keyed_ordering() const noexcept { return keyed_; }

  // Cancels a pending event; no-op if it already fired.
  void cancel(EventId id) { queue_.cancel(id); }

  // Runs until the event queue drains or stop() is called.
  void run();

  // Runs events with timestamp <= deadline, then sets now() = deadline.
  // Events scheduled beyond the deadline stay queued, so simulation can be
  // resumed with further run_until() calls.
  void run_until(Time deadline);

  // Runs every event with timestamp strictly below `end` and returns.
  // Unlike run_until() this neither clears stopped_ nor advances now() to
  // the boundary: it is the inner step of a conservative window [T, T+L),
  // called repeatedly by the parallel coordinator, and the clock must stay
  // at the last dispatched event so cross-window schedule_in() arithmetic
  // keeps its meaning.
  void run_window(Time end) {
    while (queue_.next_time() < end) dispatch_one();
  }

  // Moves the clock forward without running anything (used by the parallel
  // engine to finish a run at the deadline on domains that went idle).
  void advance_to(Time t) noexcept {
    if (t > now_) now_ = t;
  }

  // Requests that run()/run_until() return after the current event.
  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] std::uint64_t events_processed() const noexcept { return events_processed_; }
  [[nodiscard]] std::size_t events_pending() const noexcept { return queue_.size(); }

  // Peak pending-event depth and callback-slab high-water mark since
  // construction — the kernel's memory footprint, surfaced through
  // SweepRunner::RunStats and the sim.events.* metrics.
  [[nodiscard]] std::size_t peak_events_pending() const noexcept {
    return queue_.peak_pending();
  }
  [[nodiscard]] std::size_t slab_high_water() const noexcept {
    return queue_.slab_high_water();
  }

  // Dispatch counts bucketed by EventCategory (always maintained).
  [[nodiscard]] const EventCategoryCounts& events_by_category() const noexcept {
    return events_by_category_;
  }

  // Enables wall-time bucketing per category (steady_clock around each
  // callback). Off by default; dispatch counts are kept regardless.
  void set_profiling(bool enabled) noexcept { profiling_ = enabled; }
  [[nodiscard]] bool profiling() const noexcept { return profiling_; }

  // Wall nanoseconds spent inside callbacks per category; all zero unless
  // set_profiling(true) was active while events ran. Wall time never feeds
  // back into the simulation — determinism is unaffected.
  [[nodiscard]] const std::array<double, kNumEventCategories>& wall_ns_by_category()
      const noexcept {
    return wall_ns_by_category_;
  }

  // Borrowed observability hub; nullptr (the default) means "not observed"
  // and every instrumented component takes its zero-cost fast path.
  void set_hub(obs::Hub* hub) noexcept { hub_ = hub; }
  [[nodiscard]] obs::Hub* hub() const noexcept { return hub_; }

  // Borrowed invariant auditor; nullptr (the default) means "unaudited".
  // Components reach it through INCAST_AUDITOR(sim), which compiles to a
  // constant nullptr under -DINCAST_AUDIT=OFF.
  void set_auditor(Auditor* auditor) noexcept { auditor_ = auditor; }
  [[nodiscard]] Auditor* auditor() const noexcept { return auditor_; }

  // Borrowed flow-lifecycle tracer (obs/flow_trace.h); nullptr (the
  // default) means "no latency attribution". Like the hub, attach it
  // *before* building topology/senders — they cache the pointer at
  // construction. Components reach it through INCAST_FLOW_TRACER(sim).
  void set_flow_tracer(obs::FlowTracer* tracer) noexcept { flow_tracer_ = tracer; }
  [[nodiscard]] obs::FlowTracer* flow_tracer() const noexcept { return flow_tracer_; }

 private:
  void dispatch_one();

  EventQueue queue_;
  Time now_{Time::zero()};
  bool stopped_{false};
  bool keyed_{false};
  bool profiling_{false};
  std::uint64_t ambient_key_{0};
  std::uint64_t events_processed_{0};
  EventCategoryCounts events_by_category_{};
  std::array<double, kNumEventCategories> wall_ns_by_category_{};
  obs::Hub* hub_{nullptr};
  Auditor* auditor_{nullptr};
  obs::FlowTracer* flow_tracer_{nullptr};
};

}  // namespace incast::sim

#endif  // INCAST_SIM_SIMULATOR_H_
