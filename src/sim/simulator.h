// Simulator: the discrete-event loop.
//
// Single-threaded and deterministic: events at equal timestamps fire in
// scheduling order. All simulation components hold a Simulator& and schedule
// work through it; nothing in the simulation may consult wall-clock time.
#ifndef INCAST_SIM_SIMULATOR_H_
#define INCAST_SIM_SIMULATOR_H_

#include <cstdint>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace incast::sim {

class Simulator {
 public:
  using Callback = EventQueue::Callback;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current simulated time. Advances only inside run()/run_until().
  [[nodiscard]] Time now() const noexcept { return now_; }

  // Schedules `cb` at absolute time `at` (must be >= now()).
  EventId schedule_at(Time at, Callback cb);

  // Schedules `cb` after `delay` (must be >= 0).
  EventId schedule_in(Time delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  // Cancels a pending event; no-op if it already fired.
  void cancel(EventId id) { queue_.cancel(id); }

  // Runs until the event queue drains or stop() is called.
  void run();

  // Runs events with timestamp <= deadline, then sets now() = deadline.
  // Events scheduled beyond the deadline stay queued, so simulation can be
  // resumed with further run_until() calls.
  void run_until(Time deadline);

  // Requests that run()/run_until() return after the current event.
  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] std::uint64_t events_processed() const noexcept { return events_processed_; }
  [[nodiscard]] std::size_t events_pending() const noexcept { return queue_.size(); }

 private:
  void dispatch_one();

  EventQueue queue_;
  Time now_{Time::zero()};
  bool stopped_{false};
  std::uint64_t events_processed_{0};
};

}  // namespace incast::sim

#endif  // INCAST_SIM_SIMULATOR_H_
