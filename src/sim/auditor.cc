#include "sim/auditor.h"

#include <algorithm>
#include <chrono>

namespace incast::sim {

const char* to_string(AuditInvariant inv) noexcept {
  switch (inv) {
    case AuditInvariant::kConservation: return "conservation";
    case AuditInvariant::kNegativeDepth: return "negative_depth";
    case AuditInvariant::kTimeMonotonic: return "time_monotonic";
    case AuditInvariant::kCwndBounds: return "cwnd_bounds";
    case AuditInvariant::kRtoBounds: return "rto_bounds";
    case AuditInvariant::kLivelock: return "livelock";
    case AuditInvariant::kFlowBreakdown: return "flow_breakdown";
    case AuditInvariant::kLookahead: return "lookahead";
  }
  return "unknown";
}

const char* to_string(AuditMode mode) noexcept {
  switch (mode) {
    case AuditMode::kOff: return "off";
    case AuditMode::kRelaxed: return "relaxed";
    case AuditMode::kStrict: return "strict";
  }
  return "unknown";
}

bool parse_audit_mode(const std::string& text, AuditMode& out) noexcept {
  if (text == "off") {
    out = AuditMode::kOff;
  } else if (text == "relaxed") {
    out = AuditMode::kRelaxed;
  } else if (text == "strict") {
    out = AuditMode::kStrict;
  } else {
    return false;
  }
  return true;
}

void Auditor::violate(AuditInvariant inv, std::string detail) {
  ++violations_[static_cast<std::size_t>(inv)];
  if (sink_) sink_(Violation{inv, detail});
  if (config_.strict) throw AuditFailure{to_string(inv), detail};
}

void Auditor::violate_nonmonotonic(std::int64_t now_ns, std::int64_t at_ns) {
  violate(AuditInvariant::kTimeMonotonic,
          "event at t=" + std::to_string(at_ns) + "ns dispatched at now=" +
              std::to_string(now_ns) + "ns");
}

void Auditor::violate_livelock(std::int64_t at_ns) {
  stuck_windows_ = 0;  // re-arm so relaxed mode reports repeats
  violate(AuditInvariant::kLivelock,
          "at least " + std::to_string(config_.livelock_event_limit) +
              " events without sim-time advance at t=" + std::to_string(at_ns) +
              "ns");
}

void Auditor::arm_check_countdown() noexcept {
  // Distance to the next multiple-of-8192 event count; capped at the event
  // budget's edge (the call where events_seen() first exceeds max_events),
  // so the budget still trips on exactly that call.
  std::uint64_t until = kPeriodicCheckMask + 1 - (events_seen_ & kPeriodicCheckMask);
  if (config_.max_events != 0 && events_seen_ <= config_.max_events) {
    until = std::min(until, config_.max_events + 1 - events_seen_);
  }
  check_countdown_ = until;
  check_countdown_len_ = until;
}

void Auditor::check_boundary(std::int64_t at_ns) {
  events_seen_ += check_countdown_len_;
  // Re-arm before any throw so a caught exception leaves the countdown
  // valid (the next boundary simply checks again).
  const bool at_periodic = (events_seen_ & kPeriodicCheckMask) == 0;
  arm_check_countdown();
  if (config_.max_events != 0 && events_seen_ > config_.max_events) {
    throw BudgetExceeded{"task dispatched more than " +
                         std::to_string(config_.max_events) + " events"};
  }
  if (at_periodic) {
    // Livelock window compare: time is dispatch-monotonic, so an unchanged
    // timestamp across a whole 8192-event window means zero advance in it.
    if (at_ns == boundary_ns_) {
      if (++stuck_windows_ * (kPeriodicCheckMask + 1) >=
          config_.livelock_event_limit) {
        violate_livelock(at_ns);
      }
    } else {
      boundary_ns_ = at_ns;
      stuck_windows_ = 0;
    }
    periodic_check();
  }
}

void Auditor::periodic_check() {
  if (config_.cancel != nullptr &&
      config_.cancel->load(std::memory_order_relaxed)) {
    throw RunCancelled{};
  }
  if (config_.max_wall_ms <= 0.0) return;
  const auto now_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  if (wall_start_ns_ == 0) {
    wall_start_ns_ = now_ns;
    return;
  }
  const double elapsed_ms = static_cast<double>(now_ns - wall_start_ns_) / 1e6;
  if (elapsed_ms > config_.max_wall_ms) {
    throw BudgetExceeded{"task ran for " + std::to_string(elapsed_ms) +
                         " ms (budget " + std::to_string(config_.max_wall_ms) +
                         " ms)"};
  }
}

void Auditor::check_conservation(std::int64_t residual_bytes) {
  const std::int64_t in = injected_bytes_ + control_injected_bytes_;
  const std::int64_t accounted = delivered_bytes_ + control_consumed_bytes_ +
                                 dropped_bytes_ + trimmed_bytes_ + residual_bytes;
  if (in != accounted) {
    violate(AuditInvariant::kConservation,
            "injected " + std::to_string(injected_bytes_) + " bytes (" +
                std::to_string(injected_packets_) + " pkts) + control " +
                std::to_string(control_injected_bytes_) + " != delivered " +
                std::to_string(delivered_bytes_) + " + control_consumed " +
                std::to_string(control_consumed_bytes_) + " + dropped " +
                std::to_string(dropped_bytes_) + " + trimmed " +
                std::to_string(trimmed_bytes_) + " + residual " +
                std::to_string(residual_bytes) + " = " + std::to_string(accounted));
  }
}

}  // namespace incast::sim
