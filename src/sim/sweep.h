// SweepRunner: a work-stealing thread pool for embarrassingly parallel
// simulation sweeps.
//
// Every Section 3/4 reproduction runs a grid of fully independent
// simulations — (host, snapshot) fleet traces, fault-sweep points, service
// catalogs. SweepRunner executes such a grid across hardware threads while
// preserving the repo's determinism contract:
//
//  * seeds are derived per task as splitmix64(base_seed, task_index), never
//    from thread identity or scheduling order (derive_task_seed below);
//  * results land at their task index, not completion order, so the output
//    vector is byte-identical regardless of thread count or interleaving;
//  * each task owns its Simulator and all objects reachable from it — the
//    single-writer-per-task invariant (docs/PARALLELISM.md) means workers
//    share nothing but the immutable config and their own result slot.
//
// jobs == 1 runs every task inline on the calling thread with no pool at
// all, reproducing the historical sequential behavior exactly.
//
// Fault isolation (Policy): by default a task's exception aborts the sweep
// (fail_fast — the historical behavior). With fail_fast off, a failing
// task is retried up to max_attempts times with the same seed, then
// quarantined: its failure is recorded as a structured TaskFailure in
// RunStats::failures and every other task still runs to completion. A
// cooperative cancellation flag lets a signal handler stop the sweep
// between tasks; tasks that never ran are counted, not failed.
#ifndef INCAST_SIM_SWEEP_H_
#define INCAST_SIM_SWEEP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/event_category.h"

namespace incast::sim {

// One splitmix64 step (the same mixer Rng seeds itself with); exposed so
// seed-derivation code and tests agree on the exact constants.
[[nodiscard]] std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

// Derives the seed for task `task_index` of a sweep with seed `base_seed`.
// Two splitmix64 rounds over (base_seed, task_index): distinct indices give
// distinct, well-mixed seeds (the first round makes even adjacent indices
// uncorrelated), and the result depends on nothing but the two inputs — a
// task's seed is identical whether the sweep runs on 1 thread or 16.
[[nodiscard]] std::uint64_t derive_task_seed(std::uint64_t base_seed,
                                             std::uint64_t task_index) noexcept;

// Why a quarantined task failed; indexes exit-code and journal categories.
enum class FailureCategory : std::uint8_t {
  kException = 0,  // any std::exception outside the taxonomy below
  kAudit,          // sim::AuditFailure (strict invariant violation)
  kBudget,         // sim::BudgetExceeded (event or wall-clock budget)
  kCancelled,      // sim::RunCancelled (cooperative cancellation)
};

[[nodiscard]] const char* to_string(FailureCategory category) noexcept;

// One quarantined sweep point: everything needed to reproduce it alone.
struct TaskFailure {
  std::size_t index{0};
  std::uint64_t seed{0};  // from Policy::seed_of; 0 when no mapper is set
  FailureCategory category{FailureCategory::kException};
  std::string message;
  int attempts{1};  // how many times the task was tried before quarantine
};

class SweepRunner {
 public:
  // Fault-isolation policy for a sweep. The default reproduces the
  // historical behavior exactly: first failure aborts the run.
  struct Policy {
    // true: the first task exception is rethrown from run() (after the
    // pool drains). false: failing tasks are quarantined into
    // RunStats::failures and the rest of the sweep completes.
    bool fail_fast{true};

    // With fail_fast off, how many times to try a task before quarantining
    // it (same seed each time — retries only help transient failures such
    // as wall-budget noise; deterministic failures fail identically).
    int max_attempts{1};

    // Maps a task index to its derived seed, purely for failure records
    // (the runner never seeds tasks itself).
    std::function<std::uint64_t(std::size_t)> seed_of;

    // Observes each quarantine as it happens (journal append, log line).
    // Called under an internal mutex: keep it cheap and do not call back
    // into the runner.
    std::function<void(const TaskFailure&)> on_failure;

    // Cooperative cancellation: when set and *cancel becomes true, workers
    // stop picking up new tasks (in-flight tasks finish or throw
    // RunCancelled via their own auditor). Must outlive the run.
    const std::atomic<bool>* cancel{nullptr};
  };

  // Filled in by the runner for every task; tasks report their simulation
  // event count through the reference they receive.
  struct TaskStats {
    double wall_ms{0.0};          // wall-clock execution time of the task
    std::uint64_t events{0};      // simulator events the task dispatched
    int worker{-1};               // worker thread that ran it (0 = caller)
    // Per-category dispatch counts (copy the task Simulator's
    // events_by_category() here to surface the event-loop profile).
    EventCategoryCounts events_by_category{};
    // Event-kernel memory footprint of the task's Simulator: peak pending
    // heap depth and callback-slab high-water mark (sim/event_queue.h).
    std::uint64_t peak_events_pending{0};
    std::uint64_t slab_high_water{0};
    // Times the task was started (1 for a clean run; > 1 after retries).
    int attempts{0};
  };

  struct RunStats {
    int jobs{1};
    double wall_ms{0.0};          // whole-sweep wall time
    std::uint64_t total_events{0};
    std::uint64_t steals{0};      // tasks a worker took from another's deque
    // Sum of per-task category counts across the sweep.
    EventCategoryCounts events_by_category{};
    // Max over tasks: the deepest any task's event kernel ran. Sizes
    // reserve_events() hints for future runs of the same grid.
    std::uint64_t peak_events_pending{0};
    std::uint64_t slab_high_water{0};
    std::vector<TaskStats> tasks; // indexed by task index

    // Quarantined tasks, sorted by index (empty under fail_fast or when
    // every task succeeded), total retry attempts beyond the first try,
    // and tasks never started because cancellation was observed first.
    std::vector<TaskFailure> failures;
    std::uint64_t retries{0};
    std::uint64_t tasks_not_run{0};

    // Peak resident set size of the whole process at the end of the sweep
    // (getrusage ru_maxrss; 0 on platforms without it). Informational only:
    // RSS depends on allocator and OS behavior, so it never feeds the
    // deterministic CSV outputs — use it for memory budgeting and CI gates.
    std::uint64_t peak_rss_bytes{0};

    // Aggregate simulation throughput of the sweep.
    [[nodiscard]] double events_per_second() const noexcept {
      return wall_ms > 0.0 ? static_cast<double>(total_events) / (wall_ms / 1e3) : 0.0;
    }

    // True when task `index` was quarantined (binary search of failures).
    [[nodiscard]] bool failed(std::size_t index) const noexcept;
  };

  // jobs <= 0 selects std::thread::hardware_concurrency().
  explicit SweepRunner(int jobs = 0) noexcept;

  [[nodiscard]] int jobs() const noexcept { return jobs_; }

  // Installs the fault-isolation policy for subsequent run() calls.
  void set_policy(Policy policy) { policy_ = std::move(policy); }
  [[nodiscard]] const Policy& policy() const noexcept { return policy_; }

  // Runs fn(index, stats) for every index in [0, n) and returns the results
  // ordered by task index. fn must be callable concurrently from multiple
  // threads for distinct indices and must not touch shared mutable state
  // (give each task its own Simulator/Rng seeded via derive_task_seed).
  // Under fail_fast (the default) the first exception thrown by any task is
  // rethrown here after all workers have drained; otherwise failing tasks
  // leave a default-constructed Result at their index and a TaskFailure in
  // last_run().failures — callers must consult failed(index) before using a
  // result.
  template <typename Result, typename Fn>
  std::vector<Result> run(std::size_t n, Fn&& fn) {
    std::vector<Result> results(n);
    execute(n, [&](std::size_t index, TaskStats& stats) {
      results[index] = fn(index, stats);
    });
    return results;
  }

  // Stats for the most recent run(); valid until the next run() call.
  [[nodiscard]] const RunStats& last_run() const noexcept { return stats_; }

 private:
  // Type-erased core: distributes indices over worker deques, runs the
  // pool, times each task, and records stats_.
  void execute(std::size_t n, const std::function<void(std::size_t, TaskStats&)>& task);

  int jobs_;
  Policy policy_;
  RunStats stats_;
};

}  // namespace incast::sim

#endif  // INCAST_SIM_SWEEP_H_
