// SweepRunner: a work-stealing thread pool for embarrassingly parallel
// simulation sweeps.
//
// Every Section 3/4 reproduction runs a grid of fully independent
// simulations — (host, snapshot) fleet traces, fault-sweep points, service
// catalogs. SweepRunner executes such a grid across hardware threads while
// preserving the repo's determinism contract:
//
//  * seeds are derived per task as splitmix64(base_seed, task_index), never
//    from thread identity or scheduling order (derive_task_seed below);
//  * results land at their task index, not completion order, so the output
//    vector is byte-identical regardless of thread count or interleaving;
//  * each task owns its Simulator and all objects reachable from it — the
//    single-writer-per-task invariant (docs/PARALLELISM.md) means workers
//    share nothing but the immutable config and their own result slot.
//
// jobs == 1 runs every task inline on the calling thread with no pool at
// all, reproducing the historical sequential behavior exactly.
#ifndef INCAST_SIM_SWEEP_H_
#define INCAST_SIM_SWEEP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_category.h"

namespace incast::sim {

// One splitmix64 step (the same mixer Rng seeds itself with); exposed so
// seed-derivation code and tests agree on the exact constants.
[[nodiscard]] std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

// Derives the seed for task `task_index` of a sweep with seed `base_seed`.
// Two splitmix64 rounds over (base_seed, task_index): distinct indices give
// distinct, well-mixed seeds (the first round makes even adjacent indices
// uncorrelated), and the result depends on nothing but the two inputs — a
// task's seed is identical whether the sweep runs on 1 thread or 16.
[[nodiscard]] std::uint64_t derive_task_seed(std::uint64_t base_seed,
                                             std::uint64_t task_index) noexcept;

class SweepRunner {
 public:
  // Filled in by the runner for every task; tasks report their simulation
  // event count through the reference they receive.
  struct TaskStats {
    double wall_ms{0.0};          // wall-clock execution time of the task
    std::uint64_t events{0};      // simulator events the task dispatched
    int worker{-1};               // worker thread that ran it (0 = caller)
    // Per-category dispatch counts (copy the task Simulator's
    // events_by_category() here to surface the event-loop profile).
    EventCategoryCounts events_by_category{};
    // Event-kernel memory footprint of the task's Simulator: peak pending
    // heap depth and callback-slab high-water mark (sim/event_queue.h).
    std::uint64_t peak_events_pending{0};
    std::uint64_t slab_high_water{0};
  };

  struct RunStats {
    int jobs{1};
    double wall_ms{0.0};          // whole-sweep wall time
    std::uint64_t total_events{0};
    std::uint64_t steals{0};      // tasks a worker took from another's deque
    // Sum of per-task category counts across the sweep.
    EventCategoryCounts events_by_category{};
    // Max over tasks: the deepest any task's event kernel ran. Sizes
    // reserve_events() hints for future runs of the same grid.
    std::uint64_t peak_events_pending{0};
    std::uint64_t slab_high_water{0};
    std::vector<TaskStats> tasks; // indexed by task index

    // Aggregate simulation throughput of the sweep.
    [[nodiscard]] double events_per_second() const noexcept {
      return wall_ms > 0.0 ? static_cast<double>(total_events) / (wall_ms / 1e3) : 0.0;
    }
  };

  // jobs <= 0 selects std::thread::hardware_concurrency().
  explicit SweepRunner(int jobs = 0) noexcept;

  [[nodiscard]] int jobs() const noexcept { return jobs_; }

  // Runs fn(index, stats) for every index in [0, n) and returns the results
  // ordered by task index. fn must be callable concurrently from multiple
  // threads for distinct indices and must not touch shared mutable state
  // (give each task its own Simulator/Rng seeded via derive_task_seed).
  // The first exception thrown by any task is rethrown here after all
  // workers have drained.
  template <typename Result, typename Fn>
  std::vector<Result> run(std::size_t n, Fn&& fn) {
    std::vector<Result> results(n);
    execute(n, [&](std::size_t index, TaskStats& stats) {
      results[index] = fn(index, stats);
    });
    return results;
  }

  // Stats for the most recent run(); valid until the next run() call.
  [[nodiscard]] const RunStats& last_run() const noexcept { return stats_; }

 private:
  // Type-erased core: distributes indices over worker deques, runs the
  // pool, times each task, and records stats_.
  void execute(std::size_t n, const std::function<void(std::size_t, TaskStats&)>& task);

  int jobs_;
  RunStats stats_;
};

}  // namespace incast::sim

#endif  // INCAST_SIM_SWEEP_H_
