// Parsing helpers: human-friendly strings to Time and Bandwidth.
//
// Used by the CLI driver and anywhere configuration comes from text:
//   parse_time("15ms") -> 15 milliseconds      (ns, us, ms, s)
//   parse_bandwidth("10Gbps") -> 10 Gbit/s     (bps, Kbps, Mbps, Gbps)
//
// Both return std::nullopt on malformed input instead of throwing, so
// callers can produce their own diagnostics.
#ifndef INCAST_SIM_PARSE_H_
#define INCAST_SIM_PARSE_H_

#include <optional>
#include <string_view>

#include "sim/time.h"
#include "sim/units.h"

namespace incast::sim {

// Accepts "<number><unit>" with unit in {ns, us, ms, s} (case-insensitive);
// the number may be fractional ("1.5ms"). Whitespace between number and
// unit is allowed ("15 ms").
[[nodiscard]] std::optional<Time> parse_time(std::string_view text);

// Accepts "<number><unit>" with unit in {bps, kbps, mbps, gbps}
// (case-insensitive); fractional numbers allowed ("2.5Gbps").
[[nodiscard]] std::optional<Bandwidth> parse_bandwidth(std::string_view text);

}  // namespace incast::sim

#endif  // INCAST_SIM_PARSE_H_
