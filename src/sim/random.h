// Rng: deterministic pseudo-random numbers for simulations.
//
// We implement the generator (xoshiro256**) and every distribution ourselves
// instead of using <random>'s distributions, whose output is
// implementation-defined. With this class, a seed fully determines a run on
// any platform, which the test suite relies on.
#ifndef INCAST_SIM_RANDOM_H_
#define INCAST_SIM_RANDOM_H_

#include <array>
#include <cstdint>

#include "sim/time.h"

namespace incast::sim {

class Rng {
 public:
  // Seeds the state via SplitMix64, so any 64-bit seed (including 0) yields
  // a well-mixed state.
  explicit Rng(std::uint64_t seed) noexcept;

  // Uniform 64-bit output (xoshiro256**).
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  // Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  // Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  // Uniform integer in [lo, hi] (inclusive). Precondition: lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  // Uniform duration in [lo, hi).
  [[nodiscard]] Time uniform_time(Time lo, Time hi) noexcept;

  // True with probability p (clamped to [0, 1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  // Exponential with the given mean (> 0).
  [[nodiscard]] double exponential(double mean) noexcept;

  // Standard normal via Box-Muller (no state cached; we burn one draw pair).
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  // Lognormal: exp(N(mu, sigma)). Note mu/sigma are parameters of the
  // underlying normal, not the lognormal's own mean/stddev.
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept;

  // Poisson with the given mean. Uses inversion for small means and a
  // normal approximation above 256 (ample for our workloads).
  [[nodiscard]] std::int64_t poisson(double mean) noexcept;

  // Derives an independent child generator; used to give each host/flow its
  // own stream so adding components does not perturb others' draws.
  [[nodiscard]] Rng fork() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace incast::sim

#endif  // INCAST_SIM_RANDOM_H_
