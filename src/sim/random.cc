#include "sim/random.h"

#include <cmath>

#include "sim/sweep.h"

namespace incast::sim {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // Seed expansion shares the exact splitmix64 used for sweep-task seed
  // derivation (sim/sweep.h), so the whole determinism story rests on one
  // mixer.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64_next(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random bits into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Modulo bias is negligible for our spans (<< 2^64) and determinism
  // matters more than perfect uniformity here.
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

Time Rng::uniform_time(Time lo, Time hi) noexcept {
  if (hi <= lo) return lo;
  return Time::nanoseconds(uniform_int(lo.ns(), hi.ns() - 1));
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) noexcept {
  // Inverse CDF; guard against log(0).
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) noexcept {
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

std::int64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean > 256.0) {
    const double v = normal(mean, std::sqrt(mean));
    return v < 0.0 ? 0 : static_cast<std::int64_t>(v + 0.5);
  }
  // Knuth inversion.
  const double limit = std::exp(-mean);
  double product = uniform();
  std::int64_t count = 0;
  while (product > limit) {
    ++count;
    product *= uniform();
  }
  return count;
}

Rng Rng::fork() noexcept { return Rng{next_u64()}; }

}  // namespace incast::sim
