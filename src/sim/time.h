// Time: a strong type for simulated time with nanosecond resolution.
//
// All simulator timestamps and durations use this type. Using a dedicated
// type (rather than a bare int64_t) prevents accidentally mixing time with
// byte counts or rates, and gives named constructors for each unit.
#ifndef INCAST_SIM_TIME_H_
#define INCAST_SIM_TIME_H_

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace incast::sim {

// A point in simulated time, or a duration, in nanoseconds.
//
// Time supports the usual arithmetic (difference of two points is a
// duration; durations add, scale, and divide). We deliberately use one type
// for both points and durations — the simulator's origin is always t = 0, so
// the distinction carries no information here and a single type keeps the
// API small.
class Time {
 public:
  constexpr Time() noexcept = default;

  // Named constructors. Fractional inputs are supported for the coarser
  // units because configuration is often expressed as e.g. 0.5 ms.
  [[nodiscard]] static constexpr Time nanoseconds(std::int64_t ns) noexcept {
    return Time{ns};
  }
  [[nodiscard]] static constexpr Time microseconds(double us) noexcept {
    return Time{static_cast<std::int64_t>(us * 1e3)};
  }
  [[nodiscard]] static constexpr Time milliseconds(double ms) noexcept {
    return Time{static_cast<std::int64_t>(ms * 1e6)};
  }
  [[nodiscard]] static constexpr Time seconds(double s) noexcept {
    return Time{static_cast<std::int64_t>(s * 1e9)};
  }
  [[nodiscard]] static constexpr Time zero() noexcept { return Time{0}; }
  // A sentinel later than any reachable simulation time.
  [[nodiscard]] static constexpr Time infinity() noexcept {
    return Time{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t ns() const noexcept { return ns_; }
  [[nodiscard]] constexpr double us() const noexcept { return static_cast<double>(ns_) * 1e-3; }
  [[nodiscard]] constexpr double ms() const noexcept { return static_cast<double>(ns_) * 1e-6; }
  [[nodiscard]] constexpr double sec() const noexcept { return static_cast<double>(ns_) * 1e-9; }

  [[nodiscard]] constexpr bool is_infinite() const noexcept {
    return ns_ == std::numeric_limits<std::int64_t>::max();
  }

  constexpr auto operator<=>(const Time&) const noexcept = default;

  constexpr Time& operator+=(Time other) noexcept {
    ns_ += other.ns_;
    return *this;
  }
  constexpr Time& operator-=(Time other) noexcept {
    ns_ -= other.ns_;
    return *this;
  }

  [[nodiscard]] friend constexpr Time operator+(Time a, Time b) noexcept {
    return Time{a.ns_ + b.ns_};
  }
  [[nodiscard]] friend constexpr Time operator-(Time a, Time b) noexcept {
    return Time{a.ns_ - b.ns_};
  }
  // Scaling uses double throughout: nanosecond counts in any realistic
  // simulation stay far below 2^53, so the conversion is exact.
  [[nodiscard]] friend constexpr Time operator*(Time a, double k) noexcept {
    return Time{static_cast<std::int64_t>(static_cast<double>(a.ns_) * k)};
  }
  [[nodiscard]] friend constexpr Time operator*(double k, Time a) noexcept { return a * k; }
  // Ratio of two durations (e.g. how many bins fit in a trace).
  [[nodiscard]] friend constexpr double operator/(Time a, Time b) noexcept {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }
  [[nodiscard]] friend constexpr Time operator/(Time a, double k) noexcept {
    return Time{static_cast<std::int64_t>(static_cast<double>(a.ns_) / k)};
  }

  // Human-readable rendering with an auto-selected unit ("1.5ms", "30us").
  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr Time(std::int64_t ns) noexcept : ns_{ns} {}

  std::int64_t ns_{0};
};

namespace literals {

[[nodiscard]] constexpr Time operator""_ns(unsigned long long v) noexcept {
  return Time::nanoseconds(static_cast<std::int64_t>(v));
}
[[nodiscard]] constexpr Time operator""_us(unsigned long long v) noexcept {
  return Time::microseconds(static_cast<double>(v));
}
[[nodiscard]] constexpr Time operator""_ms(unsigned long long v) noexcept {
  return Time::milliseconds(static_cast<double>(v));
}
[[nodiscard]] constexpr Time operator""_s(unsigned long long v) noexcept {
  return Time::seconds(static_cast<double>(v));
}

}  // namespace literals

}  // namespace incast::sim

#endif  // INCAST_SIM_TIME_H_
