// Domain decomposition primitives for the conservative parallel engine.
//
// A *domain* is one shard of a single simulation run: it owns a Simulator
// (its own EventQueue and clock) and executes on its own worker thread under
// the windowed conservative barrier in sim/parallel_simulator.h. This header
// holds the two pieces every layer above agrees on:
//
//  * Event-ordering lanes. Decomposition-invariant determinism needs a
//    tie-break at equal timestamps that does not depend on how entities are
//    assigned to domains. A global insertion counter (the sequential
//    engine's tie-break) is exactly such a dependence, so the parallel
//    engine orders equal-time events by a 64-bit *key* instead:
//
//        key = (lane << kLaneSeqBits) | lane_seq
//
//    where `lane` identifies the scheduling entity (net::Node id + 1; lane
//    0 is the ambient lane for non-entity schedules) and `lane_seq` is that
//    lane's private monotone counter. A lane's events are only ever
//    scheduled by code executing in the lane owner's domain, so lane
//    counters need no synchronization, and the (time, key) order every
//    domain executes is the projection of one global total order — the same
//    total order at any domain count, which is the whole determinism
//    argument.
//
//  * Cross-domain mailboxes. During a window, a producer domain appends
//    entries to its private (src, dst) mailbox — single producer, no
//    consumer until the barrier, so the window-time fast path is a plain
//    vector append with no locks and no atomics. The barrier itself is the
//    synchronization edge: all workers rendezvous on one mutex/condvar
//    generation, after which the coordinator drains every mailbox serially
//    before opening the next window. Entries carry the (time, key) stamp
//    assigned at transmit, so a packet merges into the destination queue at
//    exactly the global position it would have held intra-domain.
#ifndef INCAST_SIM_DOMAIN_H_
#define INCAST_SIM_DOMAIN_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace incast::sim {

// Low bits of an event key hold the lane-local sequence number; high bits
// the lane. 40 bits of sequence is ~10^12 events per lane (a degree-100k
// run schedules orders of magnitude fewer per node), and 24 bits of lane is
// ~16M nodes.
inline constexpr std::uint32_t kLaneSeqBits = 40;

// Lane 0 is the ambient lane: schedules made outside any entity (setup
// code, experiment harnesses). Ambient events are domain-local — they must
// only be scheduled before the parallel run starts or by single-domain
// runs, never from mid-run cross-domain code paths.
inline constexpr std::uint64_t kAmbientLane = 0;

[[nodiscard]] constexpr std::uint64_t make_event_key(std::uint64_t lane,
                                                     std::uint64_t lane_seq) noexcept {
  return (lane << kLaneSeqBits) | lane_seq;
}

// One directed (src domain -> dst domain) mailbox. post() is called only by
// the src domain's worker thread during a window; entries()/clear() only at
// a barrier (all threads quiescent), so no internal synchronization is
// needed — see the header comment for the happens-before argument.
template <typename Entry>
class DomainMailbox {
 public:
  void post(Entry entry) {
    entries_.push_back(std::move(entry));
    ++posted_;
  }

  [[nodiscard]] std::vector<Entry>& entries() noexcept { return entries_; }
  void clear() noexcept { entries_.clear(); }

  // Lifetime count of entries ever posted (not cleared by clear()).
  [[nodiscard]] std::uint64_t posted() const noexcept { return posted_; }

 private:
  std::vector<Entry> entries_;
  std::uint64_t posted_{0};
};

// The n x n grid of directed mailboxes between domains. The (d, d)
// diagonal exists but is never used — intra-domain delivery stays on the
// direct scheduling path.
template <typename Entry>
class MailboxGrid {
 public:
  explicit MailboxGrid(int domains)
      : domains_{domains},
        boxes_{static_cast<std::size_t>(domains) * static_cast<std::size_t>(domains)} {}

  [[nodiscard]] DomainMailbox<Entry>& box(int src, int dst) {
    assert(src >= 0 && src < domains_ && dst >= 0 && dst < domains_);
    return boxes_[static_cast<std::size_t>(src) * static_cast<std::size_t>(domains_) +
                  static_cast<std::size_t>(dst)];
  }

  [[nodiscard]] int domains() const noexcept { return domains_; }

  [[nodiscard]] std::uint64_t total_posted() const noexcept {
    std::uint64_t total = 0;
    for (const DomainMailbox<Entry>& b : boxes_) total += b.posted();
    return total;
  }

 private:
  int domains_;
  std::vector<DomainMailbox<Entry>> boxes_;
};

// Bucket index for the per-window event-count histogram (floor(log2(n))+1,
// clamped; bucket 0 = empty windows). Defined in domain.cc.
inline constexpr std::size_t kWindowHistBuckets = 24;
[[nodiscard]] std::size_t window_hist_bucket(std::uint64_t events_in_window) noexcept;

}  // namespace incast::sim

#endif  // INCAST_SIM_DOMAIN_H_
