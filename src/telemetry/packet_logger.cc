#include "telemetry/packet_logger.h"

#include <ostream>

namespace incast::telemetry {

void PacketLogger::on_ingress(const net::Packet& p, sim::Time now) {
  ++total_;
  if (events_.size() == capacity_) events_.pop_front();
  events_.push_back(Event{
      .at = now,
      .flow = p.tcp.flow_id,
      .seq = p.tcp.seq,
      .ack = p.tcp.ack,
      .payload_bytes = p.payload_bytes,
      .is_ack = p.tcp.has_ack,
      .ce = p.ecn == net::Ecn::kCe,
      .retransmit = p.is_retransmit,
  });
}

void PacketLogger::write_csv(std::ostream& out) const {
  out << "t_ns,flow,seq,ack,payload,is_ack,ce,retx\n";
  for (const Event& e : events_) {
    out << e.at.ns() << ',' << e.flow << ',' << e.seq << ',' << e.ack << ','
        << e.payload_bytes << ',' << (e.is_ack ? 1 : 0) << ',' << (e.ce ? 1 : 0) << ','
        << (e.retransmit ? 1 : 0) << '\n';
  }
}

}  // namespace incast::telemetry
