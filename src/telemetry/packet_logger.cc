#include "telemetry/packet_logger.h"

#include <ostream>

#include "obs/hub.h"

namespace incast::telemetry {

void PacketLogger::on_ingress(const net::Packet& p, sim::Time now) {
  ++total_;
  const Event e{
      .at = now,
      .flow = p.tcp.flow_id,
      .seq = p.tcp.seq,
      .ack = p.tcp.ack,
      .payload_bytes = p.payload_bytes,
      .is_ack = p.tcp.has_ack,
      .ce = p.ecn == net::Ecn::kCe,
      .retransmit = p.is_retransmit,
  };
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
  } else {
    ring_[head_] = e;
    head_ = (head_ + 1) % capacity_;
  }
  if (hub_ != nullptr && hub_->tracing()) {
    hub_->instant(now.ns(), obs::TraceCategory::kNet,
                  e.is_ack ? "pkt.ack" : "pkt.data",
                  obs::kFlowTidBase + static_cast<std::uint32_t>(e.flow), "seq", e.seq,
                  "payload", e.payload_bytes);
  }
}

std::vector<PacketLogger::Event> PacketLogger::events() const {
  std::vector<Event> out;
  out.reserve(ring_.size());
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_), ring_.end());
  out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  return out;
}

void PacketLogger::write_csv(std::ostream& out) const {
  out << "t_ns,flow,seq,ack,payload,is_ack,ce,retx\n";
  for (const Event& e : events()) {
    out << e.at.ns() << ',' << e.flow << ',' << e.seq << ',' << e.ack << ','
        << e.payload_bytes << ',' << (e.is_ack ? 1 : 0) << ',' << (e.ce ? 1 : 0) << ','
        << (e.retransmit ? 1 : 0) << '\n';
  }
}

}  // namespace incast::telemetry
