#include "telemetry/trace_io.h"

#include <array>
#include <charconv>
#include <fstream>
#include <string_view>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace incast::telemetry {

namespace {

constexpr const char* kHeader = "bin,bytes,marked_bytes,retx_bytes,corrupt_bytes,active_flows";
// Pre-fault-injection traces lack the corrupt_bytes column; still readable.
constexpr const char* kLegacyHeader = "bin,bytes,marked_bytes,retx_bytes,active_flows";

std::int64_t parse_int(std::string_view field, std::size_t line_no) {
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size()) {
    throw std::runtime_error("trace csv: bad integer '" + std::string(field) +
                             "' on line " + std::to_string(line_no));
  }
  return value;
}

}  // namespace

void write_bins_csv(const std::vector<Millisampler::Bin>& bins, std::ostream& out) {
  out << kHeader << '\n';
  for (std::size_t i = 0; i < bins.size(); ++i) {
    const auto& b = bins[i];
    out << i << ',' << b.bytes << ',' << b.marked_bytes << ',' << b.retx_bytes << ','
        << b.corrupt_bytes << ',' << b.active_flows << '\n';
  }
}

bool write_bins_csv_file(const std::vector<Millisampler::Bin>& bins,
                         const std::string& path) {
  std::ofstream out{path};
  if (!out) return false;
  write_bins_csv(bins, out);
  return static_cast<bool>(out);
}

std::vector<Millisampler::Bin> read_bins_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("trace csv: missing or wrong header");
  }
  while (!line.empty() && line.front() == '#') {
    if (!std::getline(in, line)) {
      throw std::runtime_error("trace csv: missing or wrong header");
    }
  }
  std::size_t columns = 0;
  if (line == kHeader) {
    columns = 6;
  } else if (line == kLegacyHeader) {
    columns = 5;
  } else {
    throw std::runtime_error("trace csv: missing or wrong header");
  }

  std::vector<Millisampler::Bin> bins;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    // '#' lines are annotations (e.g. the sweep-quarantine footer the CLI
    // appends after an interrupted export); skip them anywhere.
    if (line.empty() || line.front() == '#') continue;

    std::array<std::string_view, 6> fields;
    std::size_t field_count = 0;
    std::string_view rest{line};
    bool more = true;
    while (more && field_count < columns) {
      const std::size_t comma = rest.find(',');
      fields[field_count++] = rest.substr(0, comma);
      more = comma != std::string_view::npos;
      if (more) rest.remove_prefix(comma + 1);
    }
    if (field_count != columns || more) {
      throw std::runtime_error("trace csv: expected " + std::to_string(columns) +
                               " columns on line " + std::to_string(line_no));
    }

    const auto index = parse_int(fields[0], line_no);
    if (index != static_cast<std::int64_t>(bins.size())) {
      throw std::runtime_error("trace csv: non-contiguous bin index on line " +
                               std::to_string(line_no));
    }
    Millisampler::Bin b;
    b.bytes = parse_int(fields[1], line_no);
    b.marked_bytes = parse_int(fields[2], line_no);
    b.retx_bytes = parse_int(fields[3], line_no);
    if (columns == 6) b.corrupt_bytes = parse_int(fields[4], line_no);
    b.active_flows = static_cast<int>(parse_int(fields[columns - 1], line_no));
    bins.push_back(b);
  }
  return bins;
}

std::vector<Millisampler::Bin> read_bins_csv_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    throw std::runtime_error("trace csv: cannot open " + path);
  }
  return read_bins_csv(in);
}

}  // namespace incast::telemetry
