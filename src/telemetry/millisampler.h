// Millisampler: host-side ingress sampling at millisecond granularity.
//
// The production Millisampler [Ghabashneh et al., IMC 2022] runs as an eBPF
// tc filter on the host NIC and bins ingress traffic at 1 ms. This class is
// its simulator equivalent: it attaches to a Host as an IngressTap and
// records, per 1 ms bin, the ingress bytes, ECN(CE)-marked bytes,
// retransmitted bytes, and the number of distinct active flows — exactly
// the four quantities behind the paper's Figures 1, 2, and 4.
#ifndef INCAST_TELEMETRY_MILLISAMPLER_H_
#define INCAST_TELEMETRY_MILLISAMPLER_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "net/host.h"
#include "sim/units.h"

namespace incast::telemetry {

class Millisampler final : public net::IngressTap {
 public:
  struct Config {
    sim::Time bin_duration{sim::Time::milliseconds(1)};
    // NIC line rate, used to express bins as utilization fractions.
    sim::Bandwidth line_rate{sim::Bandwidth::gigabits_per_second(10)};
  };

  struct Bin {
    std::int64_t bytes{0};         // all ingress bytes
    std::int64_t marked_bytes{0};  // bytes in CE-marked packets
    std::int64_t retx_bytes{0};    // bytes in retransmitted data packets
    // Bytes in checksum-failed frames the NIC discarded (fault injection).
    // The simulator analogue of rx_crc_errors: visible to host telemetry,
    // invisible to the transport — this is how injected corruption loss is
    // told apart from congestion loss in a trace.
    std::int64_t corrupt_bytes{0};
    int active_flows{0};           // distinct flows with data in this bin
  };

  explicit Millisampler(const Config& config) : config_{config} {}

  // IngressTap: called by the Host for every arriving packet.
  void on_ingress(const net::Packet& p, sim::Time now) override;

  // Closes the trace at `end`: flushes the in-progress bin and pads with
  // empty bins so the trace covers [0, end). Call once, after the run.
  void finalize(sim::Time end);

  [[nodiscard]] const std::vector<Bin>& bins() const noexcept { return bins_; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

  // Fraction of line rate used in bin i.
  [[nodiscard]] double utilization(std::size_t i) const;
  // Fraction of line rate that was CE-marked in bin i.
  [[nodiscard]] double marked_utilization(std::size_t i) const;
  // Fraction of line rate that was retransmitted data in bin i.
  [[nodiscard]] double retx_utilization(std::size_t i) const;

  // Mean utilization across the whole trace.
  [[nodiscard]] double average_utilization() const;

  // Clears all bins, starting a fresh trace at the given origin. Lets one
  // sampler collect multiple traces from the same host.
  void restart(sim::Time origin);

 private:
  void roll_to(std::size_t bin_index);
  [[nodiscard]] std::int64_t bytes_per_bin_at_line_rate() const noexcept {
    return config_.line_rate.bytes_in(config_.bin_duration);
  }

  Config config_;
  sim::Time origin_{sim::Time::zero()};
  std::vector<Bin> bins_;
  // The bin currently being filled.
  std::size_t current_index_{0};
  Bin current_{};
  std::unordered_set<net::FlowId> current_flows_;
  bool started_{false};
};

}  // namespace incast::telemetry

#endif  // INCAST_TELEMETRY_MILLISAMPLER_H_
