#include "telemetry/queue_monitor.h"

#include "obs/hub.h"

namespace incast::telemetry {

void QueueMonitor::start(sim::Time until) {
  if (!config_.trace_label.empty()) {
    obs::Hub* hub = INCAST_OBS_HUB(sim_);
    if (hub != nullptr && hub->enabled()) {
      hub_ = hub;
      depth_counter_name_ = "queue." + config_.trace_label + ".depth";
      watermark_counter_name_ = "queue." + config_.trace_label + ".watermark";
    }
  }
  if (config_.sample_every > sim::Time::zero()) {
    sample_tick(until);
  }
  if (config_.watermark_window > sim::Time::zero()) {
    // Reset the queue's watermark so the first window starts clean.
    (void)queue_.take_watermark();
    sim_.schedule_in(config_.watermark_window, [this, until] { watermark_tick(until); },
                     sim::EventCategory::kTelemetry);
  }
}

void QueueMonitor::sample_tick(sim::Time until) {
  const std::int64_t depth = queue_.packets();
  samples_.push_back(Sample{sim_.now(), depth});
  if (hub_ != nullptr) {
    if (depth != last_depth_emitted_) {
      last_depth_emitted_ = depth;
      hub_->counter(sim_.now().ns(), obs::TraceCategory::kQueue, depth_counter_name_,
                    obs::kQueueTid, depth);
    }
    hub_->observe_queue_depth(sim_.now().ns(), depth);
  }
  const sim::Time next = sim_.now() + config_.sample_every;
  if (next <= until) {
    sim_.schedule_in(config_.sample_every, [this, until] { sample_tick(until); },
                     sim::EventCategory::kTelemetry);
  }
}

void QueueMonitor::watermark_tick(sim::Time until) {
  const std::int64_t peak = queue_.take_watermark();
  watermarks_.push_back(peak);
  drops_.push_back(queue_.stats().dropped_packets);
  injected_drops_.push_back(injected_drop_source_ ? injected_drop_source_() : 0);
  if (hub_ != nullptr) {
    hub_->counter(sim_.now().ns(), obs::TraceCategory::kQueue, watermark_counter_name_,
                  obs::kQueueTid, peak);
    // The window peak feeds the collapse trigger too: watermark-only
    // monitors (sample_every == 0, e.g. fleet hosts) still detect collapse.
    hub_->observe_queue_depth(sim_.now().ns(), peak);
  }
  const sim::Time next = sim_.now() + config_.watermark_window;
  if (next <= until) {
    sim_.schedule_in(config_.watermark_window, [this, until] { watermark_tick(until); },
                     sim::EventCategory::kTelemetry);
  }
}

}  // namespace incast::telemetry
