#include "telemetry/queue_monitor.h"

namespace incast::telemetry {

void QueueMonitor::start(sim::Time until) {
  if (config_.sample_every > sim::Time::zero()) {
    sample_tick(until);
  }
  if (config_.watermark_window > sim::Time::zero()) {
    // Reset the queue's watermark so the first window starts clean.
    (void)queue_.take_watermark();
    sim_.schedule_in(config_.watermark_window, [this, until] { watermark_tick(until); });
  }
}

void QueueMonitor::sample_tick(sim::Time until) {
  samples_.push_back(Sample{sim_.now(), queue_.packets()});
  const sim::Time next = sim_.now() + config_.sample_every;
  if (next <= until) {
    sim_.schedule_in(config_.sample_every, [this, until] { sample_tick(until); });
  }
}

void QueueMonitor::watermark_tick(sim::Time until) {
  watermarks_.push_back(queue_.take_watermark());
  drops_.push_back(queue_.stats().dropped_packets);
  injected_drops_.push_back(injected_drop_source_ ? injected_drop_source_() : 0);
  const sim::Time next = sim_.now() + config_.watermark_window;
  if (next <= until) {
    sim_.schedule_in(config_.watermark_window, [this, until] { watermark_tick(until); });
  }
}

}  // namespace incast::telemetry
