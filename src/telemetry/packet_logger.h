// PacketLogger: a bounded per-packet event log at a host NIC.
//
// The heavyweight sibling of Millisampler: where the sampler aggregates
// into 1 ms bins, the logger records individual packet arrivals (time,
// flow, sequence, size, CE, retransmit flags) into a fixed-capacity ring —
// the simulator equivalent of a truncated packet capture. Useful for
// debugging protocol behaviour and for microscopic views of single bursts;
// attach sparingly, it costs memory per packet.
#ifndef INCAST_TELEMETRY_PACKET_LOGGER_H_
#define INCAST_TELEMETRY_PACKET_LOGGER_H_

#include <cstdint>
#include <deque>
#include <iosfwd>

#include "net/host.h"

namespace incast::telemetry {

class PacketLogger final : public net::IngressTap {
 public:
  struct Event {
    sim::Time at{};
    net::FlowId flow{0};
    std::int64_t seq{0};
    std::int64_t ack{0};
    std::int64_t payload_bytes{0};
    bool is_ack{false};
    bool ce{false};
    bool retransmit{false};
  };

  // Keeps the most recent `capacity` events; older ones are evicted.
  explicit PacketLogger(std::size_t capacity = 65536) : capacity_{capacity} {}

  void on_ingress(const net::Packet& p, sim::Time now) override;

  [[nodiscard]] const std::deque<Event>& events() const noexcept { return events_; }
  // Every packet observed, including those already evicted from the ring.
  [[nodiscard]] std::uint64_t total_observed() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t evicted() const noexcept {
    return total_ - static_cast<std::uint64_t>(events_.size());
  }

  void clear() noexcept {
    events_.clear();
    total_ = 0;
  }

  // One CSV row per event: t_ns,flow,seq,ack,payload,is_ack,ce,retx
  void write_csv(std::ostream& out) const;

 private:
  std::size_t capacity_;
  std::deque<Event> events_;
  std::uint64_t total_{0};
};

}  // namespace incast::telemetry

#endif  // INCAST_TELEMETRY_PACKET_LOGGER_H_
