// PacketLogger: a bounded per-packet event log at a host NIC.
//
// The heavyweight sibling of Millisampler: where the sampler aggregates
// into 1 ms bins, the logger records individual packet arrivals (time,
// flow, sequence, size, CE, retransmit flags) into a fixed-capacity ring —
// the simulator equivalent of a truncated packet capture. Useful for
// debugging protocol behaviour and for microscopic views of single bursts;
// attach sparingly, it costs memory per packet.
//
// Storage is a true ring buffer: once full, the write cursor wraps and
// overwrites the oldest slot in O(1), with no per-packet deallocation.
// When an observability hub is attached, each packet also becomes a
// "pkt.data"/"pkt.ack" instant on the flow's trace track, correlating raw
// packet arrivals with cwnd and queue activity in the same timeline.
#ifndef INCAST_TELEMETRY_PACKET_LOGGER_H_
#define INCAST_TELEMETRY_PACKET_LOGGER_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "net/host.h"

namespace incast::obs {
class Hub;
}  // namespace incast::obs

namespace incast::telemetry {

class PacketLogger final : public net::IngressTap {
 public:
  struct Event {
    sim::Time at{};
    net::FlowId flow{0};
    std::int64_t seq{0};
    std::int64_t ack{0};
    std::int64_t payload_bytes{0};
    bool is_ack{false};
    bool ce{false};
    bool retransmit{false};
  };

  // Keeps the most recent `capacity` events; older ones are overwritten.
  explicit PacketLogger(std::size_t capacity = 65536) : capacity_{capacity} {
    ring_.reserve(capacity_);
  }

  // Mirror packets into `hub`'s tracer as per-flow instants. Pass nullptr
  // to detach. The logger's own ring is unaffected by the hub's state.
  void set_hub(obs::Hub* hub) noexcept { hub_ = hub; }

  void on_ingress(const net::Packet& p, sim::Time now) override;

  // The retained events, oldest first. Returns a copy: the backing store
  // is a wrapping ring whose physical order differs from logical order.
  [[nodiscard]] std::vector<Event> events() const;
  // Every packet observed, including those already evicted from the ring.
  [[nodiscard]] std::uint64_t total_observed() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t evicted() const noexcept {
    return total_ - static_cast<std::uint64_t>(ring_.size());
  }

  void clear() noexcept {
    ring_.clear();
    head_ = 0;
    total_ = 0;
  }

  // One CSV row per event: t_ns,flow,seq,ack,payload,is_ack,ce,retx
  void write_csv(std::ostream& out) const;

 private:
  std::size_t capacity_;
  // Ring storage: grows to capacity_, then head_ marks the oldest slot
  // (also the next to be overwritten).
  std::vector<Event> ring_;
  std::size_t head_{0};
  std::uint64_t total_{0};
  obs::Hub* hub_{nullptr};
};

}  // namespace incast::telemetry

#endif  // INCAST_TELEMETRY_PACKET_LOGGER_H_
