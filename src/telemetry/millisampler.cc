#include "telemetry/millisampler.h"

#include <cassert>

namespace incast::telemetry {

void Millisampler::on_ingress(const net::Packet& p, sim::Time now) {
  assert(now >= origin_);
  const auto index =
      static_cast<std::size_t>((now - origin_).ns() / config_.bin_duration.ns());
  roll_to(index);

  started_ = true;
  current_.bytes += p.size_bytes;
  if (p.corrupted) {
    // A mangled frame still burned wire bandwidth, but its header fields
    // are not trustworthy, so it contributes nothing beyond byte counts.
    current_.corrupt_bytes += p.size_bytes;
    return;
  }
  if (p.ecn == net::Ecn::kCe) current_.marked_bytes += p.size_bytes;
  if (p.is_retransmit) current_.retx_bytes += p.size_bytes;
  if (p.is_data()) current_flows_.insert(p.tcp.flow_id);
}

void Millisampler::roll_to(std::size_t bin_index) {
  assert(bin_index >= current_index_);
  while (current_index_ < bin_index) {
    current_.active_flows = static_cast<int>(current_flows_.size());
    bins_.push_back(current_);
    current_ = Bin{};
    current_flows_.clear();
    ++current_index_;
  }
}

void Millisampler::finalize(sim::Time end) {
  const auto last = static_cast<std::size_t>((end - origin_).ns() / config_.bin_duration.ns());
  if (current_index_ < last) {
    roll_to(last);
  } else if (bins_.size() > last) {
    // Packets arrived past `end` (e.g. the run drained in-flight bursts
    // beyond the trace boundary); clip the trace at the boundary.
    bins_.resize(last);
  }
}

void Millisampler::restart(sim::Time origin) {
  origin_ = origin;
  bins_.clear();
  current_index_ = 0;
  current_ = Bin{};
  current_flows_.clear();
  started_ = false;
}

double Millisampler::utilization(std::size_t i) const {
  return static_cast<double>(bins_.at(i).bytes) /
         static_cast<double>(bytes_per_bin_at_line_rate());
}

double Millisampler::marked_utilization(std::size_t i) const {
  return static_cast<double>(bins_.at(i).marked_bytes) /
         static_cast<double>(bytes_per_bin_at_line_rate());
}

double Millisampler::retx_utilization(std::size_t i) const {
  return static_cast<double>(bins_.at(i).retx_bytes) /
         static_cast<double>(bytes_per_bin_at_line_rate());
}

double Millisampler::average_utilization() const {
  if (bins_.empty()) return 0.0;
  std::int64_t total = 0;
  for (const Bin& b : bins_) total += b.bytes;
  return static_cast<double>(total) /
         (static_cast<double>(bytes_per_bin_at_line_rate()) *
          static_cast<double>(bins_.size()));
}

}  // namespace incast::telemetry
