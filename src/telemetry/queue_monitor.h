// QueueMonitor: records switch queue occupancy two ways.
//
// 1. A periodic time series of instantaneous depth (for Figures 5 and 6,
//    which plot ToR queue length over time during bursts).
// 2. Windowed high watermarks — the per-interval peak occupancy. This is
//    how production ToRs expose queue depth ("switches record queue
//    utilization as a high watermark over the last minute", Section 3.4).
//    We default to 1 ms windows so watermarks can be joined to Millisampler
//    bins for per-burst peak-queue statistics (Figure 4a).
#ifndef INCAST_TELEMETRY_QUEUE_MONITOR_H_
#define INCAST_TELEMETRY_QUEUE_MONITOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "net/queue.h"
#include "sim/simulator.h"

namespace incast::obs {
class Hub;
}  // namespace incast::obs

namespace incast::telemetry {

class QueueMonitor {
 public:
  struct Config {
    // Instantaneous sampling period; zero disables the time series.
    sim::Time sample_every{sim::Time::zero()};
    // Watermark window; zero disables watermarks.
    sim::Time watermark_window{sim::Time::milliseconds(1)};
    // Observability label (e.g. the link name). When non-empty and the
    // simulator carries a hub, sampled depths become "queue.<label>.depth"
    // counter trace events and every observation feeds the flight
    // recorder's queue-collapse trigger.
    std::string trace_label;
  };

  struct Sample {
    sim::Time at;
    std::int64_t packets;
  };

  QueueMonitor(sim::Simulator& sim, net::DropTailQueue& queue, const Config& config)
      : sim_{sim}, queue_{queue}, config_{config} {}

  QueueMonitor(const QueueMonitor&) = delete;
  QueueMonitor& operator=(const QueueMonitor&) = delete;

  // Begins monitoring until `until` (exclusive of further events).
  void start(sim::Time until);

  // Optional source of cumulative fault-injected drops on the monitored
  // path (e.g. fault::FaultInjector counters). When set, each watermark
  // window also records the injected total, so analysis can attribute loss
  // correctly: the queue's own dropped_packets are congestion drops only —
  // injected drops never enter the queue's accounting.
  void set_injected_drop_source(std::function<std::int64_t()> source) {
    injected_drop_source_ = std::move(source);
  }

  [[nodiscard]] const std::vector<Sample>& samples() const noexcept { return samples_; }
  // watermarks()[i] is the peak depth (packets) in window i.
  [[nodiscard]] const std::vector<std::int64_t>& watermarks() const noexcept {
    return watermarks_;
  }
  // Cumulative congestion drops observed at the end of each watermark window.
  [[nodiscard]] const std::vector<std::int64_t>& drops_at_window_end() const noexcept {
    return drops_;
  }
  // Cumulative injected (fault-layer) drops at each window end; all zeros
  // unless an injected-drop source is attached.
  [[nodiscard]] const std::vector<std::int64_t>& injected_drops_at_window_end()
      const noexcept {
    return injected_drops_;
  }

  [[nodiscard]] net::DropTailQueue& queue() noexcept { return queue_; }

 private:
  void sample_tick(sim::Time until);
  void watermark_tick(sim::Time until);

  sim::Simulator& sim_;
  net::DropTailQueue& queue_;
  Config config_;
  obs::Hub* hub_{nullptr};
  std::string depth_counter_name_;
  std::string watermark_counter_name_;
  std::int64_t last_depth_emitted_{-1};
  std::vector<Sample> samples_;
  std::vector<std::int64_t> watermarks_;
  std::vector<std::int64_t> drops_;
  std::vector<std::int64_t> injected_drops_;
  std::function<std::int64_t()> injected_drop_source_;
};

}  // namespace incast::telemetry

#endif  // INCAST_TELEMETRY_QUEUE_MONITOR_H_
