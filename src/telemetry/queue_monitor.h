// QueueMonitor: records switch queue occupancy two ways.
//
// 1. A periodic time series of instantaneous depth (for Figures 5 and 6,
//    which plot ToR queue length over time during bursts).
// 2. Windowed high watermarks — the per-interval peak occupancy. This is
//    how production ToRs expose queue depth ("switches record queue
//    utilization as a high watermark over the last minute", Section 3.4).
//    We default to 1 ms windows so watermarks can be joined to Millisampler
//    bins for per-burst peak-queue statistics (Figure 4a).
#ifndef INCAST_TELEMETRY_QUEUE_MONITOR_H_
#define INCAST_TELEMETRY_QUEUE_MONITOR_H_

#include <cstdint>
#include <vector>

#include "net/queue.h"
#include "sim/simulator.h"

namespace incast::telemetry {

class QueueMonitor {
 public:
  struct Config {
    // Instantaneous sampling period; zero disables the time series.
    sim::Time sample_every{sim::Time::zero()};
    // Watermark window; zero disables watermarks.
    sim::Time watermark_window{sim::Time::milliseconds(1)};
  };

  struct Sample {
    sim::Time at;
    std::int64_t packets;
  };

  QueueMonitor(sim::Simulator& sim, net::DropTailQueue& queue, const Config& config)
      : sim_{sim}, queue_{queue}, config_{config} {}

  QueueMonitor(const QueueMonitor&) = delete;
  QueueMonitor& operator=(const QueueMonitor&) = delete;

  // Begins monitoring until `until` (exclusive of further events).
  void start(sim::Time until);

  [[nodiscard]] const std::vector<Sample>& samples() const noexcept { return samples_; }
  // watermarks()[i] is the peak depth (packets) in window i.
  [[nodiscard]] const std::vector<std::int64_t>& watermarks() const noexcept {
    return watermarks_;
  }
  // Cumulative drops observed at the end of each watermark window.
  [[nodiscard]] const std::vector<std::int64_t>& drops_at_window_end() const noexcept {
    return drops_;
  }

  [[nodiscard]] net::DropTailQueue& queue() noexcept { return queue_; }

 private:
  void sample_tick(sim::Time until);
  void watermark_tick(sim::Time until);

  sim::Simulator& sim_;
  net::DropTailQueue& queue_;
  Config config_;
  std::vector<Sample> samples_;
  std::vector<std::int64_t> watermarks_;
  std::vector<std::int64_t> drops_;
};

}  // namespace incast::telemetry

#endif  // INCAST_TELEMETRY_QUEUE_MONITOR_H_
