// PortSampler: Millisampler-style byte counters at a switch port.
//
// The paper's host-side Millisampler sees a burst only after the fabric has
// smeared it; production operators also want the in-network view (leaf
// uplinks, spine ports). PortSampler attaches to a net::Port as a TxTap and
// bins the port's transmitted traffic exactly the way Millisampler bins
// host ingress — same 1 ms bins, same fields, same CSV format — so traces
// from host, leaf, and spine vantage points are directly comparable and one
// BurstDetector runs on all of them.
#ifndef INCAST_TELEMETRY_PORT_SAMPLER_H_
#define INCAST_TELEMETRY_PORT_SAMPLER_H_

#include <string>
#include <utility>

#include "net/node.h"
#include "telemetry/millisampler.h"

namespace incast::telemetry {

class PortSampler final : public net::TxTap {
 public:
  // `name` identifies the vantage point in reports/CSV filenames; by
  // convention it is the LinkDirectory link name (e.g. "p0.l0->s1").
  PortSampler(std::string name, const Millisampler::Config& config)
      : name_{std::move(name)}, sampler_{config} {}

  // Attaches to `port` and adopts its line rate for utilization figures.
  void attach(net::Port& port) {
    Millisampler::Config cfg = sampler_.config();
    cfg.line_rate = port.bandwidth();
    sampler_ = Millisampler{cfg};
    port.add_tx_tap(this);
  }

  void on_transmit(const net::Packet& p, sim::Time now) override {
    sampler_.on_ingress(p, now);
  }

  // Flushes and pads so the trace covers [0, end); call once, post-run.
  void finalize(sim::Time end) { sampler_.finalize(end); }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const Millisampler& sampler() const noexcept { return sampler_; }
  [[nodiscard]] const std::vector<Millisampler::Bin>& bins() const noexcept {
    return sampler_.bins();
  }

 private:
  std::string name_;
  Millisampler sampler_;
};

}  // namespace incast::telemetry

#endif  // INCAST_TELEMETRY_PORT_SAMPLER_H_
