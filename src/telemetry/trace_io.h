// Trace I/O: CSV serialization for Millisampler traces.
//
// The production Millisampler exports its ring buffers for offline
// analysis; this is the equivalent interchange format, so traces can be
// archived, diffed, or analyzed by external tooling (pandas, gnuplot). One
// row per 1 ms bin:
//
//   bin,bytes,marked_bytes,retx_bytes,corrupt_bytes,active_flows
//
// (corrupt_bytes counts checksum-failed frames injected by the fault layer;
// traces written before that column existed are still readable.)
#ifndef INCAST_TELEMETRY_TRACE_IO_H_
#define INCAST_TELEMETRY_TRACE_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/millisampler.h"

namespace incast::telemetry {

// Writes bins as CSV (with header) to `out`.
void write_bins_csv(const std::vector<Millisampler::Bin>& bins, std::ostream& out);

// Convenience: writes to a file; returns false on I/O failure.
[[nodiscard]] bool write_bins_csv_file(const std::vector<Millisampler::Bin>& bins,
                                       const std::string& path);

// Parses CSV produced by write_bins_csv. Throws std::runtime_error on
// malformed input (wrong header, non-numeric fields, wrong column count).
[[nodiscard]] std::vector<Millisampler::Bin> read_bins_csv(std::istream& in);

// Convenience: reads from a file. Throws std::runtime_error if the file
// cannot be opened or parsed.
[[nodiscard]] std::vector<Millisampler::Bin> read_bins_csv_file(const std::string& path);

}  // namespace incast::telemetry

#endif  // INCAST_TELEMETRY_TRACE_IO_H_
