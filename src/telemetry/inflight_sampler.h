// InflightSampler: periodic census of per-flow in-flight bytes.
//
// Figure 7 plots the distribution (median / mean / p95 / p100) of in-flight
// data across the *active* flows of an incast over time, exposing the
// straggler skew behind the paper's Section 4.3 divergence analysis. This
// sampler polls a set of TcpSenders on a fixed period and records, per
// tick, the summary statistics over flows with unfinished demand.
#ifndef INCAST_TELEMETRY_INFLIGHT_SAMPLER_H_
#define INCAST_TELEMETRY_INFLIGHT_SAMPLER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.h"
#include "tcp/tcp_sender.h"

namespace incast::telemetry {

class InflightSampler {
 public:
  struct Snapshot {
    sim::Time at;
    int active_flows{0};
    std::int64_t p50_bytes{0};
    std::int64_t mean_bytes{0};
    std::int64_t p95_bytes{0};
    std::int64_t max_bytes{0};
  };

  // `senders` must outlive the sampler. A flow is active when it still has
  // unacknowledged or unsent demand.
  InflightSampler(sim::Simulator& sim, std::vector<tcp::TcpSender*> senders,
                  sim::Time period)
      : sim_{sim}, senders_{std::move(senders)}, period_{period} {}

  InflightSampler(const InflightSampler&) = delete;
  InflightSampler& operator=(const InflightSampler&) = delete;

  void start(sim::Time until) { tick(until); }

  [[nodiscard]] const std::vector<Snapshot>& snapshots() const noexcept {
    return snapshots_;
  }

 private:
  void tick(sim::Time until);

  sim::Simulator& sim_;
  std::vector<tcp::TcpSender*> senders_;
  sim::Time period_;
  std::vector<Snapshot> snapshots_;
};

}  // namespace incast::telemetry

#endif  // INCAST_TELEMETRY_INFLIGHT_SAMPLER_H_
