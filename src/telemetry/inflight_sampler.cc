#include "telemetry/inflight_sampler.h"

#include <algorithm>

namespace incast::telemetry {

void InflightSampler::tick(sim::Time until) {
  std::vector<std::int64_t> inflight;
  inflight.reserve(senders_.size());
  for (const tcp::TcpSender* s : senders_) {
    if (!s->all_acked()) {
      inflight.push_back(s->in_flight_bytes());
    }
  }

  Snapshot snap;
  snap.at = sim_.now();
  snap.active_flows = static_cast<int>(inflight.size());
  if (!inflight.empty()) {
    std::sort(inflight.begin(), inflight.end());
    const auto n = inflight.size();
    std::int64_t total = 0;
    for (const std::int64_t v : inflight) total += v;
    snap.p50_bytes = inflight[n / 2];
    snap.mean_bytes = total / static_cast<std::int64_t>(n);
    snap.p95_bytes = inflight[std::min(n - 1, n * 95 / 100)];
    snap.max_bytes = inflight[n - 1];
  }
  snapshots_.push_back(snap);

  const sim::Time next = sim_.now() + period_;
  if (next <= until) {
    sim_.schedule_in(period_, [this, until] { tick(until); },
                     sim::EventCategory::kTelemetry);
  }
}

}  // namespace incast::telemetry
