// ServiceProfile: generative traffic models for the five production
// services of Table 1.
//
// Meta's raw traces are proprietary, so the Section 3 reproduction drives
// the measurement pipeline with synthetic services instead. Each profile is
// a small set of distributions fitted to the properties the paper reports:
//
//  * burst arrivals: Poisson-like renewal process, tens to ~200 bursts/s
//    (Figure 2a);
//  * burst durations: truncated-geometric over 1..20 ms with ~60% of mass
//    at 1-2 ms (Figure 2b);
//  * per-burst flow counts: a lognormal incast body (medians tens to ~225,
//    p99 up to 500), an optional low-flow mode producing the bimodal cliff
//    seen for "storage" and "aggregator", and for "video" a second
//    operating regime (~225 vs ~275 mean flows) the service switches
//    between over time (Figures 2c and 3a);
//  * per-host variation: a stable multiplicative factor per host, small
//    enough that hosts of one service look alike (Figure 3b).
#ifndef INCAST_WORKLOAD_SERVICE_PROFILE_H_
#define INCAST_WORKLOAD_SERVICE_PROFILE_H_

#include <string>
#include <vector>

#include "sim/random.h"
#include "sim/time.h"

namespace incast::workload {

struct ServiceProfile {
  std::string name;
  std::string description;  // Table 1 wording

  // Mean burst arrival rate (renewal process with exponential gaps).
  double bursts_per_second{50.0};

  // Incast body: flow count ~ round(lognormal(ln(median), sigma)),
  // clamped to [min_flows, max_flows].
  double body_median_flows{100.0};
  double body_sigma{0.4};
  int min_flows{2};
  int max_flows{500};

  // Low-flow mode (e.g. checkpointing): with this probability a burst uses
  // uniform [low_mode_min, low_mode_max] flows instead of the body.
  double low_mode_probability{0.0};
  int low_mode_min{2};
  int low_mode_max{20};

  // Regime switching: if > 0, an alternate body median the service
  // periodically shifts to ("video" switching between ~225 and ~275 as the
  // scheduler spools workers up and down, Section 3.3).
  double alt_median_flows{0.0};

  // Burst duration: truncated geometric over 1..max_duration_ms, i.e.
  // P(k ms) proportional to (1-p)^(k-1).
  double duration_geometric_p{0.45};
  int max_duration_ms{20};

  // Burst intensity: aggregate demand = line_rate * duration * U with
  // U ~ uniform[util_lo, util_hi]. Near 1.0 so burst bins sit at line rate
  // (Figure 1a).
  double util_lo{0.65};
  double util_hi{1.0};

  // Per-host multiplicative spread of the body median: factor =
  // lognormal(0, host_sigma), fixed per host.
  double host_sigma{0.05};
};

// Samples a burst's flow count. `alt_regime` selects the alternate
// operating point (no-op for profiles without one); `host_factor` is the
// host's stable multiplicative offset.
[[nodiscard]] int sample_flow_count(const ServiceProfile& profile, sim::Rng& rng,
                                    bool alt_regime, double host_factor);

// Samples a burst duration (whole milliseconds, 1..max_duration_ms).
[[nodiscard]] sim::Time sample_burst_duration(const ServiceProfile& profile, sim::Rng& rng);

// Samples the burst's target utilization fraction of line rate.
[[nodiscard]] double sample_burst_utilization(const ServiceProfile& profile, sim::Rng& rng);

// The stable per-host factor for host `host_index` (deterministic in the
// profile and index, independent of the per-trace seed — this is what makes
// hosts look alike across snapshots).
[[nodiscard]] double host_factor(const ServiceProfile& profile, int host_index);

// The five services of Table 1.
[[nodiscard]] const std::vector<ServiceProfile>& service_catalog();

// Looks up a catalog profile by name; throws std::out_of_range if absent.
[[nodiscard]] const ServiceProfile& service_by_name(const std::string& name);

}  // namespace incast::workload

#endif  // INCAST_WORKLOAD_SERVICE_PROFILE_H_
