// CyclicIncastDriver: the Section 4 workload.
//
// N persistent DCTCP flows share a dumbbell bottleneck. Each burst hands
// every flow an equal share of (bottleneck_rate x burst_duration) bytes;
// flow start times are jittered uniformly in [0, 100 us] "to model
// variations in processing time". Connections persist across bursts, so
// congestion state carries over — the precondition for the Section 4.3
// burst-boundary divergence.
//
// Two schedules are supported:
//  * kFixedPeriod (default, matching the paper's cyclic workload): burst i
//    begins at i * (burst_duration + gap) regardless of progress. When
//    recovery stretches a burst past its period (Mode 3), later bursts pile
//    onto the backlog, which is exactly what makes 1000-flow incasts
//    catastrophic.
//  * kAfterCompletion: the next burst begins `gap` after the previous one
//    fully completes — a request/response pattern with think time.
//
// Per-burst completion is tracked by cumulative ACK thresholds (flow f has
// completed burst i once it has delivered (i+1) * demand bytes), which is
// well-defined even when bursts overlap.
#ifndef INCAST_WORKLOAD_CYCLIC_INCAST_H_
#define INCAST_WORKLOAD_CYCLIC_INCAST_H_

#include <functional>
#include <vector>

#include "net/topology.h"
#include "sim/random.h"
#include "sim/stable_arena.h"
#include "tcp/tcp_connection.h"

namespace incast::obs {
class Hub;
}  // namespace incast::obs

namespace incast::workload {

enum class BurstSchedule {
  kFixedPeriod,
  kAfterCompletion,
};

class CyclicIncastDriver {
 public:
  struct Config {
    int num_flows{100};
    int num_bursts{11};  // paper: simulate 11, discard the first
    sim::Time burst_duration{sim::Time::milliseconds(15)};
    // Idle gap: period = burst_duration + gap for kFixedPeriod; delay after
    // completion for kAfterCompletion.
    sim::Time inter_burst_gap{sim::Time::milliseconds(10)};
    BurstSchedule schedule{BurstSchedule::kAfterCompletion};
    sim::Time start_jitter_max{sim::Time::microseconds(100)};
    // Demand per flow = bottleneck_rate * burst_duration * demand_scale /
    // num_flows; scale 1.0 sizes the burst to exactly fill the bottleneck
    // for burst_duration.
    double demand_scale{1.0};
  };

  struct BurstRecord {
    int index{0};
    sim::Time started{};
    sim::Time completed{};
    [[nodiscard]] sim::Time completion_time() const noexcept { return completed - started; }
  };

  // The hosts the driver runs over — any topology, not just the dumbbell.
  // Flow i runs senders[i] -> receiver; `bottleneck` (typically the
  // receiver's NIC rate) sizes the per-burst demand.
  struct Endpoints {
    std::vector<net::Host*> senders;
    net::Host* receiver{nullptr};
    sim::Bandwidth bottleneck{};
  };

  // Creates one connection per flow: endpoints.senders[i] -> receiver.
  CyclicIncastDriver(sim::Simulator& sim, const Endpoints& endpoints,
                     const tcp::TcpConfig& tcp_config, const Config& config,
                     std::uint64_t seed);

  // Dumbbell convenience: sender(i) -> receiver 0, bottleneck = the
  // receiver downlink rate.
  CyclicIncastDriver(sim::Simulator& sim, net::Dumbbell& dumbbell,
                     const tcp::TcpConfig& tcp_config, const Config& config,
                     std::uint64_t seed);

  // Schedules the burst sequence starting at the current simulation time.
  void start();

  [[nodiscard]] bool finished() const noexcept {
    return completed_bursts_ == config_.num_bursts;
  }
  // Completed bursts, in index order (records appear as bursts complete).
  [[nodiscard]] const std::vector<BurstRecord>& bursts() const noexcept { return records_; }
  [[nodiscard]] std::int64_t demand_per_flow_bytes() const noexcept {
    return demand_per_flow_;
  }

  [[nodiscard]] std::vector<tcp::TcpSender*> senders();
  [[nodiscard]] tcp::TcpConnection& connection(int i) {
    return connections_[static_cast<std::size_t>(i)];
  }

  // Bytes of connection-arena storage — the workload's per-flow state
  // contribution to a bytes-per-flow budget.
  [[nodiscard]] std::size_t connection_bytes() const noexcept {
    return connections_.bytes();
  }

  // Invoked after each burst completes (argument: burst index, 0-based).
  void set_on_burst_complete(std::function<void(int)> cb) {
    on_burst_complete_ = std::move(cb);
  }

 private:
  void start_burst();
  void on_flow_progress(std::int64_t snd_una, int flow_index);
  void complete_burst(int index);

  sim::Simulator& sim_;
  Config config_;
  sim::Rng rng_;
  // Borrowed observability hub (nullptr when the run is unobserved). Burst
  // windows are emitted as async spans keyed by burst index, since
  // kFixedPeriod bursts can overlap in time.
  obs::Hub* hub_{nullptr};
  std::int64_t demand_per_flow_{0};
  // Contiguous chunked flow state: connections are address-pinned, so the
  // arena gives stable addresses without one heap object per flow.
  sim::StableChunkArena<tcp::TcpConnection, 8> connections_;

  int started_bursts_{0};
  int completed_bursts_{0};
  // Per-flow: index of the next burst this flow has yet to complete.
  std::vector<int> flow_next_burst_;
  // Per-burst: flows that have not yet delivered that burst's threshold,
  // and the burst's start time.
  std::vector<int> burst_pending_flows_;
  std::vector<sim::Time> burst_started_;
  std::vector<BurstRecord> records_;
  std::function<void(int)> on_burst_complete_;
};

}  // namespace incast::workload

#endif  // INCAST_WORKLOAD_CYCLIC_INCAST_H_
