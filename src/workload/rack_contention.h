// RackContention: background pressure on a shared switch buffer.
//
// Section 3.4: "simultaneous burst events to other hosts on the same rack
// (i.e., rack-level contention) can consume shared switch memory and likely
// exacerbates a subset of incast bursts." Rather than simulating every
// neighbour's traffic packet-by-packet, this process models their aggregate
// buffer footprint: a Markov on/off source that pins a random amount of the
// shared pool while "on". During contended periods the Dynamic Threshold
// gives the measured queue a smaller cap, producing the occasional deep
// losses of Figure 4c.
#ifndef INCAST_WORKLOAD_RACK_CONTENTION_H_
#define INCAST_WORKLOAD_RACK_CONTENTION_H_

#include "net/shared_buffer.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace incast::workload {

class RackContention {
 public:
  struct Config {
    // Mean lengths of the contended / idle periods.
    sim::Time mean_on{sim::Time::milliseconds(8)};
    sim::Time mean_off{sim::Time::milliseconds(45)};
    // While on, external usage ~ uniform[min_fraction, max_fraction] of the
    // pool's total.
    double min_fraction{0.55};
    double max_fraction{0.88};
  };

  RackContention(sim::Simulator& sim, net::SharedBufferPool& pool, const Config& config,
                 std::uint64_t seed)
      : sim_{sim}, pool_{pool}, config_{config}, rng_{seed} {}

  RackContention(const RackContention&) = delete;
  RackContention& operator=(const RackContention&) = delete;

  // Starts the on/off process (initially off) until `until`.
  void start(sim::Time until);

  [[nodiscard]] bool contended() const noexcept { return on_; }

 private:
  void toggle(sim::Time until);

  sim::Simulator& sim_;
  net::SharedBufferPool& pool_;
  Config config_;
  sim::Rng rng_;
  bool on_{false};
};

}  // namespace incast::workload

#endif  // INCAST_WORKLOAD_RACK_CONTENTION_H_
