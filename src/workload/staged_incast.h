// StagedIncastDriver: the paper's Section 5.2 proposal, implemented.
//
// "Instead of chasing high flow counts, an alternative approach is to
// divide, or schedule, a large incast into a series of smaller incasts
// where only a manageable number of flows are active at once. With fewer
// flows, each would operate in a healthier CWND regime."
//
// This driver runs the same cyclic equal-demand burst workload as
// CyclicIncastDriver, but admits at most `group_size` flows concurrently:
// the remaining flows wait in FIFO order, and each completion admits the
// next waiting flow (a sliding window of active senders, the way a
// receiver-driven scheduler would pull responses). TCP itself is
// untouched — the point of the proposal is that scheduling "need only
// serve as an enhancement rather than a replacement to TCP".
#ifndef INCAST_WORKLOAD_STAGED_INCAST_H_
#define INCAST_WORKLOAD_STAGED_INCAST_H_

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "net/topology.h"
#include "sim/random.h"
#include "tcp/tcp_connection.h"

namespace incast::workload {

class StagedIncastDriver {
 public:
  struct Config {
    int num_flows{1500};
    // Concurrently admitted flows. The healthy regime is below the
    // degenerate point: group_size * 1 MSS < ECN threshold + BDP.
    int group_size{60};
    int num_bursts{4};
    sim::Time burst_duration{sim::Time::milliseconds(15)};
    sim::Time inter_burst_gap{sim::Time::milliseconds(10)};
    sim::Time admission_jitter_max{sim::Time::microseconds(10)};
    double demand_scale{1.0};
  };

  struct BurstRecord {
    int index{0};
    sim::Time started{};
    sim::Time completed{};
    [[nodiscard]] sim::Time completion_time() const noexcept { return completed - started; }
  };

  StagedIncastDriver(sim::Simulator& sim, net::Dumbbell& dumbbell,
                     const tcp::TcpConfig& tcp_config, const Config& config,
                     std::uint64_t seed);

  void start();

  [[nodiscard]] bool finished() const noexcept {
    return completed_bursts_ == config_.num_bursts;
  }
  [[nodiscard]] const std::vector<BurstRecord>& bursts() const noexcept { return records_; }
  [[nodiscard]] std::int64_t demand_per_flow_bytes() const noexcept {
    return demand_per_flow_;
  }
  [[nodiscard]] std::vector<tcp::TcpSender*> senders();

 private:
  void start_burst();
  void admit_next();
  void on_flow_done(int flow_index);

  sim::Simulator& sim_;
  Config config_;
  sim::Rng rng_;
  std::int64_t demand_per_flow_{0};
  std::vector<std::unique_ptr<tcp::TcpConnection>> connections_;

  int current_burst_{-1};
  int completed_bursts_{0};
  int flows_done_in_burst_{0};
  sim::Time burst_started_{};
  std::deque<int> waiting_;  // flow indices not yet admitted this burst
  std::vector<BurstRecord> records_;
};

}  // namespace incast::workload

#endif  // INCAST_WORKLOAD_STAGED_INCAST_H_
