#include "workload/fleet_traffic.h"

#include <algorithm>
#include <cassert>

#include "obs/hub.h"

namespace incast::workload {

FleetTrafficGen::FleetTrafficGen(sim::Simulator& sim, net::Dumbbell& dumbbell,
                                 const tcp::TcpConfig& tcp_config, const Config& config,
                                 std::uint64_t seed)
    : sim_{sim}, dumbbell_{dumbbell}, config_{config}, rng_{seed} {
  assert(dumbbell.num_senders() >= config_.profile.max_flows);

  hub_ = INCAST_OBS_HUB(sim_);
  if (hub_ != nullptr && !hub_->enabled()) hub_ = nullptr;

  const int n = dumbbell.num_senders();
  connections_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    connections_.push_back(std::make_unique<tcp::TcpConnection>(
        sim_, dumbbell.sender(i), dumbbell.receiver(config_.receiver_index),
        config_.flow_id_base + static_cast<net::FlowId>(i), tcp_config));
  }
  pick_buffer_.resize(connections_.size());
  for (std::size_t i = 0; i < pick_buffer_.size(); ++i) pick_buffer_[i] = i;
}

void FleetTrafficGen::start(sim::Time until) { schedule_next_burst(until); }

void FleetTrafficGen::schedule_next_burst(sim::Time until) {
  const double gap_s = rng_.exponential(1.0 / config_.profile.bursts_per_second);
  const sim::Time next = sim_.now() + sim::Time::seconds(gap_s);
  if (next >= until) return;
  sim_.schedule_at(next, [this, until] {
    launch_burst();
    schedule_next_burst(until);
  }, sim::EventCategory::kWorkload);
}

void FleetTrafficGen::launch_burst() {
  const int flows = sample_flow_count(config_.profile, rng_, config_.alt_regime,
                                      config_.host_factor);
  const sim::Time duration = sample_burst_duration(config_.profile, rng_);
  const double util = sample_burst_utilization(config_.profile, rng_);

  const sim::Bandwidth line_rate =
      dumbbell_.receiver(config_.receiver_index).nic_bandwidth();
  const auto burst_bytes =
      static_cast<std::int64_t>(static_cast<double>(line_rate.bytes_in(duration)) * util);
  const std::int64_t per_flow = std::max<std::int64_t>(burst_bytes / flows, 1);

  // Each selected flow streams its response as roughly one write per
  // millisecond of the burst, starting at a flow-specific phase. This
  // keeps a flow *active* (>= 1 packet) in most 1 ms bins of the burst —
  // which is what the paper's per-bin flow counts measure — and spreads
  // aggregate arrivals so that only genuinely oversized bursts build
  // queues.
  const auto n = pick_buffer_.size();
  const sim::Time spread = duration * config_.start_spread_fraction;
  const int writes = std::max(1, static_cast<int>(duration.ms()));
  for (int k = 0; k < flows; ++k) {
    // Partial Fisher-Yates: choose `flows` distinct senders.
    const auto j = static_cast<std::size_t>(
        rng_.uniform_int(static_cast<std::int64_t>(k), static_cast<std::int64_t>(n) - 1));
    std::swap(pick_buffer_[static_cast<std::size_t>(k)], pick_buffer_[j]);
    tcp::TcpSender* sender = &connections_[pick_buffer_[static_cast<std::size_t>(k)]]->sender();
    const sim::Time phase = rng_.uniform_time(sim::Time::zero(), spread / writes);
    const double scale =
        rng_.uniform(1.0 - config_.demand_spread, 1.0 + config_.demand_spread);
    const auto demand = std::max<std::int64_t>(
        static_cast<std::int64_t>(static_cast<double>(per_flow) * scale), 1);
    const std::int64_t chunk = std::max<std::int64_t>(demand / writes, 1);
    for (int w = 0; w < writes; ++w) {
      const sim::Time at = phase + (duration * (static_cast<double>(w) / writes));
      const std::int64_t bytes = w + 1 == writes ? demand - chunk * (writes - 1) : chunk;
      if (bytes <= 0) continue;
      sim_.schedule_in(at, [sender, bytes] { sender->add_app_data(bytes); },
                       sim::EventCategory::kWorkload);
    }
  }

  if (hub_ != nullptr) {
    hub_->instant(sim_.now().ns(), obs::TraceCategory::kWorkload, "fleet_burst",
                  obs::kWorkloadTid, "flows", flows, "duration_us", duration.us());
  }
  burst_log_.push_back(BurstLogEntry{sim_.now(), flows, duration});
}

std::vector<tcp::TcpSender*> FleetTrafficGen::senders() {
  std::vector<tcp::TcpSender*> out;
  out.reserve(connections_.size());
  for (auto& conn : connections_) out.push_back(&conn->sender());
  return out;
}

}  // namespace incast::workload
