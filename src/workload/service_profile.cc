#include "workload/service_profile.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace incast::workload {

int sample_flow_count(const ServiceProfile& profile, sim::Rng& rng, bool alt_regime,
                      double host_factor) {
  if (profile.low_mode_probability > 0.0 && rng.bernoulli(profile.low_mode_probability)) {
    return static_cast<int>(rng.uniform_int(profile.low_mode_min, profile.low_mode_max));
  }
  double median = profile.body_median_flows;
  if (alt_regime && profile.alt_median_flows > 0.0) {
    median = profile.alt_median_flows;
  }
  median *= host_factor;
  const double v = rng.lognormal(std::log(median), profile.body_sigma);
  const int flows = static_cast<int>(std::lround(v));
  return std::clamp(flows, profile.min_flows, profile.max_flows);
}

sim::Time sample_burst_duration(const ServiceProfile& profile, sim::Rng& rng) {
  // Truncated geometric by inversion: keep drawing until within range (the
  // truncation point is far in the tail, so this terminates fast).
  const double p = profile.duration_geometric_p;
  for (;;) {
    double u = rng.uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    const int k = 1 + static_cast<int>(std::floor(std::log(u) / std::log(1.0 - p)));
    if (k <= profile.max_duration_ms) {
      return sim::Time::milliseconds(static_cast<double>(k));
    }
  }
}

double sample_burst_utilization(const ServiceProfile& profile, sim::Rng& rng) {
  return rng.uniform(profile.util_lo, profile.util_hi);
}

double host_factor(const ServiceProfile& profile, int host_index) {
  if (profile.host_sigma <= 0.0) return 1.0;
  // Deterministic per (profile, host): a dedicated generator seeded from
  // the profile name and host index, so the factor is stable across
  // snapshots and runs.
  std::uint64_t seed = 0xcbf29ce484222325ULL;
  for (const char c : profile.name) {
    seed = (seed ^ static_cast<std::uint64_t>(c)) * 0x100000001b3ULL;
  }
  seed ^= static_cast<std::uint64_t>(host_index) * 0x9E3779B97f4A7C15ULL;
  sim::Rng rng{seed};
  return rng.lognormal(0.0, profile.host_sigma);
}

const std::vector<ServiceProfile>& service_catalog() {
  static const std::vector<ServiceProfile> kCatalog = [] {
    std::vector<ServiceProfile> v;

    // Table 1: "Distributed key-value store". Bimodal: a large aggregation
    // mode plus a prominent low-flow mode (~45% of bursts below 20 flows —
    // the Figure 2c cliff).
    ServiceProfile storage;
    storage.name = "storage";
    storage.description = "Distributed key-value store";
    storage.bursts_per_second = 120.0;
    storage.body_median_flows = 60.0;
    storage.body_sigma = 0.60;
    storage.low_mode_probability = 0.45;
    storage.duration_geometric_p = 0.45;
    v.push_back(storage);

    // "Collects content to display on a page". The paper's running example
    // (Figure 1): frequent short bursts, high flow counts, heavy queuing
    // and marking. Smaller low-flow mode (~10% cliff).
    ServiceProfile aggregator;
    aggregator.name = "aggregator";
    aggregator.description = "Collects content to display on a page";
    aggregator.bursts_per_second = 70.0;
    aggregator.body_median_flows = 160.0;
    aggregator.body_sigma = 0.30;
    aggregator.low_mode_probability = 0.10;
    aggregator.duration_geometric_p = 0.50;
    aggregator.util_lo = 0.70;
    v.push_back(aggregator);

    // "Indexing service for recommendations".
    ServiceProfile indexer;
    indexer.name = "indexer";
    indexer.description = "Indexing service for recommendations";
    indexer.bursts_per_second = 45.0;
    indexer.body_median_flows = 80.0;
    indexer.body_sigma = 0.50;
    indexer.duration_geometric_p = 0.35;
    v.push_back(indexer);

    // "Distributed real-time messaging system": the gentlest service —
    // fewest bursts, lowest flow counts.
    ServiceProfile messaging;
    messaging.name = "messaging";
    messaging.description = "Distributed real-time messaging system";
    messaging.bursts_per_second = 18.0;
    messaging.body_median_flows = 35.0;
    messaging.body_sigma = 0.45;
    messaging.duration_geometric_p = 0.55;
    v.push_back(messaging);

    // "Video analytics service": the highest flow counts (p99 at the
    // 500-flow cap) and the regime switcher of Figure 3a (~225 vs ~275).
    ServiceProfile video;
    video.name = "video";
    video.description = "Video analytics service";
    video.bursts_per_second = 35.0;
    video.body_median_flows = 225.0;
    video.alt_median_flows = 275.0;
    video.body_sigma = 0.35;
    video.duration_geometric_p = 0.30;
    video.util_lo = 0.70;
    v.push_back(video);

    return v;
  }();
  return kCatalog;
}

const ServiceProfile& service_by_name(const std::string& name) {
  for (const ServiceProfile& p : service_catalog()) {
    if (p.name == name) return p;
  }
  throw std::out_of_range("unknown service profile: " + name);
}

}  // namespace incast::workload
