#include "workload/staged_incast.h"

#include <cassert>

namespace incast::workload {

StagedIncastDriver::StagedIncastDriver(sim::Simulator& sim, net::Dumbbell& dumbbell,
                                       const tcp::TcpConfig& tcp_config,
                                       const Config& config, std::uint64_t seed)
    : sim_{sim}, config_{config}, rng_{seed} {
  assert(config_.num_flows <= dumbbell.num_senders());
  assert(config_.group_size >= 1);

  const sim::Bandwidth bottleneck =
      dumbbell.config().receiver_link.value_or(dumbbell.config().host_link);
  const std::int64_t burst_bytes = static_cast<std::int64_t>(
      static_cast<double>(bottleneck.bytes_in(config_.burst_duration)) *
      config_.demand_scale);
  demand_per_flow_ = std::max<std::int64_t>(burst_bytes / config_.num_flows, 1);

  connections_.reserve(static_cast<std::size_t>(config_.num_flows));
  for (int i = 0; i < config_.num_flows; ++i) {
    auto conn = std::make_unique<tcp::TcpConnection>(
        sim_, dumbbell.sender(i), dumbbell.receiver(0),
        static_cast<net::FlowId>(i) + 1, tcp_config);
    conn->sender().set_on_all_acked([this, i] { on_flow_done(i); });
    connections_.push_back(std::move(conn));
  }
}

void StagedIncastDriver::start() { start_burst(); }

void StagedIncastDriver::start_burst() {
  ++current_burst_;
  flows_done_in_burst_ = 0;
  burst_started_ = sim_.now();

  waiting_.clear();
  for (int i = 0; i < config_.num_flows; ++i) waiting_.push_back(i);
  // Open the initial group; subsequent admissions ride on completions.
  for (int k = 0; k < config_.group_size && !waiting_.empty(); ++k) {
    admit_next();
  }
}

void StagedIncastDriver::admit_next() {
  if (waiting_.empty()) return;
  const int flow = waiting_.front();
  waiting_.pop_front();
  tcp::TcpSender* sender = &connections_[static_cast<std::size_t>(flow)]->sender();
  const sim::Time jitter =
      rng_.uniform_time(sim::Time::zero(), config_.admission_jitter_max);
  sim_.schedule_in(jitter,
                   [sender, demand = demand_per_flow_] { sender->add_app_data(demand); },
                   sim::EventCategory::kWorkload);
}

void StagedIncastDriver::on_flow_done(int /*flow_index*/) {
  ++flows_done_in_burst_;
  admit_next();

  if (flows_done_in_burst_ < config_.num_flows) return;

  BurstRecord rec;
  rec.index = current_burst_;
  rec.started = burst_started_;
  rec.completed = sim_.now();
  records_.push_back(rec);
  ++completed_bursts_;

  if (completed_bursts_ < config_.num_bursts) {
    sim_.schedule_in(config_.inter_burst_gap, [this] { start_burst(); },
                     sim::EventCategory::kWorkload);
  }
}

std::vector<tcp::TcpSender*> StagedIncastDriver::senders() {
  std::vector<tcp::TcpSender*> out;
  out.reserve(connections_.size());
  for (auto& conn : connections_) out.push_back(&conn->sender());
  return out;
}

}  // namespace incast::workload
