// FleetTrafficGen: the Section 3 workload — production-like burst traffic
// arriving at one measured receiver host.
//
// Bursts arrive as a renewal process with exponential gaps at the service's
// rate. Each burst samples a flow count K, a duration D, and a target
// utilization U from the ServiceProfile, picks K of the rack's persistent
// connections at random, and hands each (line_rate * D * U) / K bytes, with
// per-flow start jitter. Overlapping bursts are allowed, as in production.
#ifndef INCAST_WORKLOAD_FLEET_TRAFFIC_H_
#define INCAST_WORKLOAD_FLEET_TRAFFIC_H_

#include <memory>
#include <vector>

#include "net/topology.h"
#include "sim/random.h"
#include "tcp/tcp_connection.h"
#include "workload/service_profile.h"

namespace incast::obs {
class Hub;
}  // namespace incast::obs

namespace incast::workload {

class FleetTrafficGen {
 public:
  struct Config {
    ServiceProfile profile;
    // Selects the alternate operating regime for the whole trace (used to
    // model "video"'s slow mode switching across snapshots).
    bool alt_regime{false};
    // The measured host's stable flow-count factor.
    double host_factor{1.0};
    // Which dumbbell receiver this generator's bursts converge on, and the
    // first FlowId to use (so several generators can share one rack
    // without flow-id collisions).
    int receiver_index{0};
    net::FlowId flow_id_base{1};
    // Worker responses arrive spread across the burst, not as one
    // synchronized slam: each flow starts at uniform[0, fraction * D].
    // This is what lets small bursts pass without ECN marking (~50% of
    // production bursts see none, Figure 4b) while large incasts still
    // pile up the queue.
    double start_spread_fraction{0.8};
    // Per-flow demand heterogeneity: each flow's share is scaled by
    // uniform[1 - x, 1 + x] (total preserved in expectation).
    double demand_spread{0.5};
  };

  struct BurstLogEntry {
    sim::Time at{};
    int flows{0};
    sim::Time duration{};
  };

  // Creates one persistent connection from every dumbbell sender to
  // receiver 0. The dumbbell must have at least profile.max_flows senders.
  FleetTrafficGen(sim::Simulator& sim, net::Dumbbell& dumbbell,
                  const tcp::TcpConfig& tcp_config, const Config& config,
                  std::uint64_t seed);

  // Generates burst arrivals in [now, until).
  void start(sim::Time until);

  // Ground-truth log of generated bursts (for validating the detector).
  [[nodiscard]] const std::vector<BurstLogEntry>& burst_log() const noexcept {
    return burst_log_;
  }

  [[nodiscard]] std::vector<tcp::TcpSender*> senders();

 private:
  void schedule_next_burst(sim::Time until);
  void launch_burst();

  sim::Simulator& sim_;
  obs::Hub* hub_{nullptr};
  net::Dumbbell& dumbbell_;
  Config config_;
  sim::Rng rng_;
  std::vector<std::unique_ptr<tcp::TcpConnection>> connections_;
  std::vector<std::size_t> pick_buffer_;  // scratch for sampling K senders
  std::vector<BurstLogEntry> burst_log_;
};

}  // namespace incast::workload

#endif  // INCAST_WORKLOAD_FLEET_TRAFFIC_H_
