#include "workload/cyclic_incast.h"

#include <cassert>

#include "obs/hub.h"

namespace incast::workload {

namespace {

CyclicIncastDriver::Endpoints dumbbell_endpoints(net::Dumbbell& dumbbell, int num_flows) {
  CyclicIncastDriver::Endpoints ep;
  ep.senders.reserve(static_cast<std::size_t>(num_flows));
  for (int i = 0; i < num_flows && i < dumbbell.num_senders(); ++i) {
    ep.senders.push_back(&dumbbell.sender(i));
  }
  ep.receiver = &dumbbell.receiver(0);
  ep.bottleneck = dumbbell.config().receiver_link.value_or(dumbbell.config().host_link);
  return ep;
}

}  // namespace

CyclicIncastDriver::CyclicIncastDriver(sim::Simulator& sim, const Endpoints& endpoints,
                                       const tcp::TcpConfig& tcp_config, const Config& config,
                                       std::uint64_t seed)
    : sim_{sim}, config_{config}, rng_{seed} {
  assert(static_cast<std::size_t>(config_.num_flows) <= endpoints.senders.size());
  assert(endpoints.receiver != nullptr);
  assert(config_.num_bursts > 0);

  hub_ = INCAST_OBS_HUB(sim_);
  if (hub_ != nullptr && !hub_->enabled()) hub_ = nullptr;

  const std::int64_t burst_bytes = static_cast<std::int64_t>(
      static_cast<double>(endpoints.bottleneck.bytes_in(config_.burst_duration)) *
      config_.demand_scale);
  demand_per_flow_ = std::max<std::int64_t>(burst_bytes / config_.num_flows, 1);

  flow_next_burst_.assign(static_cast<std::size_t>(config_.num_flows), 0);
  burst_pending_flows_.assign(static_cast<std::size_t>(config_.num_bursts),
                              config_.num_flows);
  burst_started_.assign(static_cast<std::size_t>(config_.num_bursts), sim::Time::zero());

  for (int i = 0; i < config_.num_flows; ++i) {
    tcp::TcpConnection& conn = connections_.emplace_back(
        sim_, *endpoints.senders[static_cast<std::size_t>(i)], *endpoints.receiver,
        static_cast<net::FlowId>(i) + 1, tcp_config);
    conn.sender().set_on_ack_advance(
        [this, i](std::int64_t snd_una) { on_flow_progress(snd_una, i); });
  }
}

CyclicIncastDriver::CyclicIncastDriver(sim::Simulator& sim, net::Dumbbell& dumbbell,
                                       const tcp::TcpConfig& tcp_config, const Config& config,
                                       std::uint64_t seed)
    : CyclicIncastDriver(sim, dumbbell_endpoints(dumbbell, config.num_flows), tcp_config,
                         config, seed) {}

void CyclicIncastDriver::start() { start_burst(); }

void CyclicIncastDriver::start_burst() {
  const int index = started_bursts_++;
  burst_started_[static_cast<std::size_t>(index)] = sim_.now();

  if (hub_ != nullptr) {
    hub_->async_begin(sim_.now().ns(), obs::TraceCategory::kWorkload, "burst",
                      obs::kWorkloadTid, static_cast<std::uint64_t>(index), "flows",
                      config_.num_flows);
  }

  for (std::size_t i = 0; i < connections_.size(); ++i) {
    const sim::Time jitter =
        rng_.uniform_time(sim::Time::zero(), config_.start_jitter_max);
    tcp::TcpSender* sender = &connections_[i].sender();
    sim_.schedule_in(jitter,
                     [sender, demand = demand_per_flow_] { sender->add_app_data(demand); },
                     sim::EventCategory::kWorkload);
  }

  if (config_.schedule == BurstSchedule::kFixedPeriod &&
      started_bursts_ < config_.num_bursts) {
    sim_.schedule_in(config_.burst_duration + config_.inter_burst_gap,
                     [this] { start_burst(); }, sim::EventCategory::kWorkload);
  }
}

void CyclicIncastDriver::on_flow_progress(std::int64_t snd_una, int flow_index) {
  int& next = flow_next_burst_[static_cast<std::size_t>(flow_index)];
  // A flow may clear several burst thresholds with one cumulative ACK.
  while (next < started_bursts_ &&
         snd_una >= demand_per_flow_ * static_cast<std::int64_t>(next + 1)) {
    const int burst = next++;
    if (--burst_pending_flows_[static_cast<std::size_t>(burst)] == 0) {
      complete_burst(burst);
    }
  }
}

void CyclicIncastDriver::complete_burst(int index) {
  BurstRecord rec;
  rec.index = index;
  rec.started = burst_started_[static_cast<std::size_t>(index)];
  rec.completed = sim_.now();
  records_.push_back(rec);
  ++completed_bursts_;

  if (hub_ != nullptr) {
    hub_->async_end(sim_.now().ns(), obs::TraceCategory::kWorkload, "burst",
                    obs::kWorkloadTid, static_cast<std::uint64_t>(index));
  }

  if (on_burst_complete_) on_burst_complete_(index);

  if (config_.schedule == BurstSchedule::kAfterCompletion &&
      started_bursts_ < config_.num_bursts) {
    sim_.schedule_in(config_.inter_burst_gap, [this] { start_burst(); },
                     sim::EventCategory::kWorkload);
  }
}

std::vector<tcp::TcpSender*> CyclicIncastDriver::senders() {
  std::vector<tcp::TcpSender*> out;
  out.reserve(connections_.size());
  for (std::size_t i = 0; i < connections_.size(); ++i) {
    out.push_back(&connections_[i].sender());
  }
  return out;
}

}  // namespace incast::workload
