#include "workload/rack_contention.h"

namespace incast::workload {

void RackContention::start(sim::Time until) {
  const sim::Time gap = sim::Time::seconds(rng_.exponential(config_.mean_off.sec()));
  if (sim_.now() + gap >= until) return;
  sim_.schedule_in(gap, [this, until] { toggle(until); }, sim::EventCategory::kWorkload);
}

void RackContention::toggle(sim::Time until) {
  if (!on_) {
    on_ = true;
    const double fraction = rng_.uniform(config_.min_fraction, config_.max_fraction);
    pool_.set_external_usage(
        static_cast<std::int64_t>(fraction * static_cast<double>(pool_.total_bytes())));
    const sim::Time hold = sim::Time::seconds(rng_.exponential(config_.mean_on.sec()));
    sim_.schedule_in(hold, [this, until] { toggle(until); }, sim::EventCategory::kWorkload);
  } else {
    on_ = false;
    pool_.set_external_usage(0);
    const sim::Time gap = sim::Time::seconds(rng_.exponential(config_.mean_off.sec()));
    if (sim_.now() + gap < until) {
      sim_.schedule_in(gap, [this, until] { toggle(until); }, sim::EventCategory::kWorkload);
    }
  }
}

}  // namespace incast::workload
