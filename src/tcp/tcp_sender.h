// TcpSender: the data-producing endpoint of a simulated TCP connection.
//
// Owns reliability: sequencing, the retransmission timer (RFC 6298 with
// exponential backoff), fast retransmit on three duplicate ACKs, and NewReno
// partial-ACK retransmission during recovery (RFC 6582). Congestion control
// is delegated to a pluggable CongestionControl (Reno / DCTCP / CUBIC).
//
// The application interface is a byte budget: add_app_data() extends the
// stream, and the sender transmits MSS-sized segments whenever the window
// allows. This models the paper's workloads, where each burst hands every
// flow an equal number of bytes on a persistent connection.
#ifndef INCAST_TCP_TCP_SENDER_H_
#define INCAST_TCP_TCP_SENDER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "net/host.h"
#include "obs/flow_trace.h"
#include "tcp/tcp_config.h"

namespace incast::obs {
class Hub;
}  // namespace incast::obs

namespace incast::tcp {

class TcpSender final : public net::PacketHandler {
 public:
  struct Stats {
    std::int64_t data_packets_sent{0};
    std::int64_t data_bytes_sent{0};
    std::int64_t retransmitted_packets{0};
    std::int64_t retransmitted_bytes{0};
    std::int64_t fast_retransmits{0};  // recovery episodes entered
    std::int64_t timeouts{0};          // RTO firings
    std::int64_t acks_received{0};
    std::int64_t ece_acks_received{0};
    std::int64_t sack_blocks_processed{0};
    std::int64_t limited_transmits{0};  // segments released by RFC 3042
    std::int64_t tlp_probes{0};         // tail loss probes sent
    std::int64_t nacks_received{0};     // trim NACKs from the receiver
    std::int64_t nack_retransmits{0};   // segments resent on a NACK
  };

  TcpSender(sim::Simulator& sim, net::Host& local, net::NodeId remote, net::FlowId flow,
            const TcpConfig& config);
  ~TcpSender() override;

  TcpSender(const TcpSender&) = delete;
  TcpSender& operator=(const TcpSender&) = delete;

  // Extends the application stream by `bytes` and transmits what the
  // window allows.
  void add_app_data(std::int64_t bytes);

  // ACKs for this flow arrive here.
  void handle_packet(net::Packet p) override;

  // --- Observability -------------------------------------------------------

  [[nodiscard]] std::int64_t snd_una() const noexcept { return snd_una_; }
  [[nodiscard]] std::int64_t snd_nxt() const noexcept { return snd_nxt_; }
  // Highest byte ever transmitted. May exceed snd_nxt after an RTO's
  // go-back-N until retransmission catches back up.
  [[nodiscard]] std::int64_t max_sent() const noexcept { return max_sent_; }
  [[nodiscard]] std::int64_t app_limit() const noexcept { return app_limit_; }
  [[nodiscard]] std::int64_t in_flight_bytes() const noexcept { return snd_nxt_ - snd_una_; }
  // Bytes the SACK scoreboard knows arrived (between snd_una and snd_nxt).
  [[nodiscard]] std::int64_t sacked_bytes() const noexcept { return sacked_bytes_; }
  // RFC 6675 "pipe": outstanding bytes not known to have left the network.
  [[nodiscard]] std::int64_t pipe_bytes() const noexcept {
    return in_flight_bytes() - sacked_bytes_;
  }
  [[nodiscard]] bool all_acked() const noexcept { return snd_una_ >= app_limit_; }
  [[nodiscard]] bool in_recovery() const noexcept { return in_recovery_; }

  // cwnd after applying the optional guardrail cap.
  [[nodiscard]] std::int64_t effective_cwnd() const noexcept;

  [[nodiscard]] CongestionControl& congestion_control() noexcept { return *cc_; }
  [[nodiscard]] const CongestionControl& congestion_control() const noexcept { return *cc_; }
  [[nodiscard]] const RttEstimator& rtt_estimator() const noexcept { return rtt_; }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const TcpConfig& config() const noexcept { return config_; }
  [[nodiscard]] net::FlowId flow() const noexcept { return flow_; }

  // Runtime guardrail adjustment (driven by the flow-count predictor).
  void set_cwnd_cap(std::optional<std::int64_t> cap_bytes) noexcept {
    config_.cwnd_cap_bytes = cap_bytes;
  }

  // Fires whenever snd_una reaches app_limit (i.e. the current burst's data
  // is fully delivered and acknowledged).
  void set_on_all_acked(std::function<void()> cb) { on_all_acked_ = std::move(cb); }

  // Fires on every ACK that advances snd_una, with the new snd_una. Used by
  // workloads that track progress through overlapping bursts.
  void set_on_ack_advance(std::function<void(std::int64_t)> cb) {
    on_ack_advance_ = std::move(cb);
  }

 private:
  void on_nack(const net::Packet& p);
  void on_new_ack(std::int64_t ack, bool ece, const net::IntStack& int_stack);
  void on_duplicate_ack(bool ece, const net::IntStack& int_stack);
  void update_scoreboard(const net::TcpHeader& tcp);
  void drop_scoreboard_below(std::int64_t seq);
  // Next unsacked, not-yet-retransmitted segment below the recovery point;
  // returns {seq, len}, len == 0 when no hole remains.
  [[nodiscard]] std::pair<std::int64_t, std::int64_t> next_hole() const;
  void retransmit_holes();
  void try_send();
  // Sub-MSS sending: one packet every (mss / cwnd) RTTs, driven by a
  // pacing timer. This is how Swift-style CCAs operate below one packet
  // per RTT (paper Section 5.2).
  void paced_send(std::int64_t cwnd);
  void send_segment(std::int64_t seq, std::int64_t len);
  void retransmit_head();
  void enter_recovery();
  void on_rto();
  void arm_rto();
  void rearm_rto();
  void cancel_rto();
  void arm_tlp();
  void cancel_tlp();
  void on_pto();
  // Emits a cwnd counter trace event when the value changed since the last
  // emission; no-op without an observed hub.
  void maybe_emit_cwnd();
  void close_recovery_span();
  // Flow-lifecycle tracing (obs/flow_trace.h): closes the open wait
  // interval / records why the sender is waiting again. Callers guard on
  // ft_ != nullptr; both run at the current sim time, which keeps the
  // interval partition gap-free.
  void ft_unblock(obs::FlowTracer::UnblockCause cause);
  void ft_block();
  [[nodiscard]] sim::Time current_rto() const noexcept;
  [[nodiscard]] AckEvent make_ack_event(std::int64_t newly_acked, bool ece) const noexcept;

  sim::Simulator& sim_;
  net::Host& local_;
  net::NodeId remote_;
  net::FlowId flow_;
  TcpConfig config_;
  std::unique_ptr<CongestionControl> cc_;
  RttEstimator rtt_;

  // Stream state (64-bit byte offsets; see tcp/sequence.h for the 32-bit
  // wire arithmetic used by real TCP).
  std::int64_t snd_una_{0};   // oldest unacknowledged byte
  std::int64_t snd_nxt_{0};   // next byte to transmit
  std::int64_t max_sent_{0};  // highest byte ever transmitted (retx detection)
  std::int64_t app_limit_{0}; // bytes the application has supplied

  // Loss recovery.
  int dup_acks_{0};
  bool in_recovery_{false};
  std::int64_t recover_seq_{0};  // NewReno recovery point

  // SACK scoreboard: disjoint sacked ranges [start, end) above snd_una.
  std::map<std::int64_t, std::int64_t> sacked_;
  std::int64_t sacked_bytes_{0};
  // Highest byte retransmitted in the current recovery episode (hole
  // cursor); reset on entry.
  std::int64_t recovery_retx_cursor_{0};

  // RTO machinery.
  sim::EventId rto_timer_{sim::kInvalidEventId};
  int rto_backoff_{0};

  // Pacing state (only engaged when cwnd < 1 MSS).
  sim::Time pace_next_{sim::Time::zero()};
  sim::EventId pace_timer_{sim::kInvalidEventId};

  // Tail-loss-probe state: one probe per quiet episode.
  sim::EventId tlp_timer_{sim::kInvalidEventId};
  bool tlp_probe_outstanding_{false};

  // RTT sampling (Karn's rule: one sample at a time, never from a
  // retransmitted segment).
  std::int64_t sample_end_seq_{-1};
  sim::Time sample_sent_at_{};

  sim::Time last_activity_{};

  std::function<void()> on_all_acked_;
  std::function<void(std::int64_t)> on_ack_advance_;
  Stats stats_;

  // Observability (cached from sim.hub() at construction; nullptr on the
  // default unobserved path). The registered metric prefix is remembered so
  // the destructor can unregister the sources that capture `this`.
  obs::Hub* hub_{nullptr};
  std::uint32_t trace_tid_{0};
  std::string cwnd_counter_name_;
  std::string metric_prefix_;
  std::int64_t last_cwnd_emitted_{-1};
  bool recovery_span_open_{false};
  // Non-null only when a FlowTracer is attached AND this flow is sampled
  // (decided once at construction) — the unobserved path pays one branch.
  obs::FlowTracer* ft_{nullptr};
};

}  // namespace incast::tcp

#endif  // INCAST_TCP_TCP_SENDER_H_
