// RttEstimator: smoothed RTT and retransmission timeout per RFC 6298.
//
//   SRTT    <- (1 - 1/8) * SRTT + 1/8 * sample
//   RTTVAR  <- (1 - 1/4) * RTTVAR + 1/4 * |SRTT - sample|
//   RTO     <- clamp(SRTT + 4 * RTTVAR, min_rto, max_rto)
//
// min_rto matters enormously for incast Mode 3 (Section 4.1.3): with the
// Linux default of 200 ms, a timeout stretches a 15 ms burst to ~200 ms of
// burst completion time, which is exactly what the paper reports.
#ifndef INCAST_TCP_RTT_ESTIMATOR_H_
#define INCAST_TCP_RTT_ESTIMATOR_H_

#include "sim/time.h"

namespace incast::tcp {

class RttEstimator {
 public:
  struct Config {
    sim::Time initial_rto{sim::Time::milliseconds(1)};
    sim::Time min_rto{sim::Time::milliseconds(200)};  // Linux default
    sim::Time max_rto{sim::Time::seconds(120)};
  };

  explicit RttEstimator(const Config& config) noexcept : config_{config} {}

  // Feeds one RTT measurement (from a segment that was not retransmitted —
  // Karn's rule is enforced by the caller).
  void add_sample(sim::Time rtt) noexcept {
    if (!has_sample_ || rtt < min_rtt_) min_rtt_ = rtt;
    if (!has_sample_) {
      srtt_ = rtt;
      rttvar_ = rtt / 2;
      has_sample_ = true;
    } else {
      const sim::Time err = srtt_ > rtt ? srtt_ - rtt : rtt - srtt_;
      rttvar_ = rttvar_ * 0.75 + err * 0.25;
      srtt_ = srtt_ * 0.875 + rtt * 0.125;
    }
  }

  [[nodiscard]] sim::Time rto() const noexcept {
    if (!has_sample_) return clamp(config_.initial_rto);
    return clamp(srtt_ + rttvar_ * 4);
  }

  [[nodiscard]] bool has_sample() const noexcept { return has_sample_; }
  [[nodiscard]] sim::Time srtt() const noexcept { return srtt_; }
  [[nodiscard]] sim::Time rttvar() const noexcept { return rttvar_; }
  // Smallest sample seen: an estimate of the propagation (base) RTT, free
  // of queueing. Used for pacing-rate computation.
  [[nodiscard]] sim::Time min_rtt() const noexcept { return min_rtt_; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  [[nodiscard]] sim::Time clamp(sim::Time t) const noexcept {
    if (t < config_.min_rto) return config_.min_rto;
    if (t > config_.max_rto) return config_.max_rto;
    return t;
  }

  Config config_;
  sim::Time srtt_{sim::Time::zero()};
  sim::Time rttvar_{sim::Time::zero()};
  sim::Time min_rtt_{sim::Time::zero()};
  bool has_sample_{false};
};

}  // namespace incast::tcp

#endif  // INCAST_TCP_RTT_ESTIMATOR_H_
