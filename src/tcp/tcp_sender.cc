#include "tcp/tcp_sender.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/hub.h"

namespace incast::tcp {

namespace {
constexpr int kMaxRtoBackoff = 10;  // cap 2^10 on the exponential backoff
}

TcpSender::TcpSender(sim::Simulator& sim, net::Host& local, net::NodeId remote,
                     net::FlowId flow, const TcpConfig& config)
    : sim_{sim},
      local_{local},
      remote_{remote},
      flow_{flow},
      config_{config},
      cc_{make_congestion_control(config.cc, config.cc_config)},
      rtt_{config.rtt} {
  local_.register_flow(flow_, this);

  hub_ = INCAST_OBS_HUB(sim_);
  if (hub_ != nullptr && hub_->enabled()) {
    const std::string flow_str = std::to_string(flow_);
    trace_tid_ = obs::kFlowTidBase + static_cast<std::uint32_t>(flow_);
    cwnd_counter_name_ = "cwnd.f" + flow_str;
    hub_->set_thread_name(trace_tid_, "flow " + flow_str);
    metric_prefix_ = "tcp.sender." + flow_str + ".";
    auto& m = hub_->metrics();
    m.register_counter(metric_prefix_ + "rto_count", [this] { return stats_.timeouts; });
    m.register_counter(metric_prefix_ + "fast_retransmits",
                       [this] { return stats_.fast_retransmits; });
    m.register_counter(metric_prefix_ + "retransmitted_packets",
                       [this] { return stats_.retransmitted_packets; });
    m.register_counter(metric_prefix_ + "data_packets_sent",
                       [this] { return stats_.data_packets_sent; });
    m.register_counter(metric_prefix_ + "ece_acks_received",
                       [this] { return stats_.ece_acks_received; });
    m.register_gauge(metric_prefix_ + "cwnd_bytes",
                     [this] { return static_cast<double>(effective_cwnd()); });
  } else {
    hub_ = nullptr;
  }

  if (auto* ft = INCAST_FLOW_TRACER(sim_); ft != nullptr && ft->sampled(flow_)) {
    ft_ = ft;
  }
}

TcpSender::~TcpSender() {
  if (hub_ != nullptr) {
    hub_->metrics().unregister_prefix(metric_prefix_);
  }
  local_.unregister_flow(flow_);
  cancel_rto();
  cancel_tlp();
  sim_.cancel(pace_timer_);
}

void TcpSender::maybe_emit_cwnd() {
  if (hub_ == nullptr || !hub_->tracing()) return;
  const std::int64_t cwnd = effective_cwnd();
  if (cwnd == last_cwnd_emitted_) return;
  last_cwnd_emitted_ = cwnd;
  hub_->counter(sim_.now().ns(), obs::TraceCategory::kTcp, cwnd_counter_name_,
                trace_tid_, cwnd);
}

void TcpSender::close_recovery_span() {
  if (!recovery_span_open_) return;
  recovery_span_open_ = false;
  hub_->end(sim_.now().ns(), obs::TraceCategory::kTcp, "fast_recovery", trace_tid_);
}

void TcpSender::ft_unblock(obs::FlowTracer::UnblockCause cause) {
  ft_->on_unblocked(flow_, sim_.now().ns(), cause);
}

void TcpSender::ft_block() {
  using BlockReason = obs::FlowTracer::BlockReason;
  BlockReason reason = BlockReason::kDrain;
  if (in_recovery_) {
    reason = BlockReason::kFastRecovery;
  } else if (snd_nxt_ < app_limit_) {
    reason = BlockReason::kCwndLimited;
  }
  ft_->on_blocked(flow_, sim_.now().ns(), reason);
}

void TcpSender::add_app_data(std::int64_t bytes) {
  assert(bytes >= 0);
  if (bytes == 0) return;

  if (ft_ != nullptr) {
    // Idle flow: opens a new active period (no-op if one is open). Active
    // flow: the app pushing data is what woke the sender, so close the
    // open wait interval (a just-opened period closes a zero-length one).
    ft_->on_period_start(flow_, sim_.now().ns());
    ft_unblock(obs::FlowTracer::UnblockCause::kApp);
  }

  if (config_.slow_start_after_idle && snd_una_ == snd_nxt_ &&
      sim_.now() - last_activity_ > current_rto()) {
    cc_->reset_to_initial_window();
  }

  app_limit_ += bytes;
  try_send();
  if (ft_ != nullptr) ft_block();
}

std::int64_t TcpSender::effective_cwnd() const noexcept {
  const std::int64_t cwnd = cc_->cwnd_bytes();
  if (config_.cwnd_cap_bytes.has_value()) {
    return std::max(std::min(cwnd, *config_.cwnd_cap_bytes), config_.mss_bytes);
  }
  return cwnd;
}

void TcpSender::handle_packet(net::Packet p) {
  if (ft_ != nullptr) {
    ft_unblock(p.tcp.nack ? obs::FlowTracer::UnblockCause::kNack
                          : obs::FlowTracer::UnblockCause::kAck);
  }
  if (p.tcp.nack) [[unlikely]] {
    on_nack(p);
    if (ft_ != nullptr) ft_block();
    return;
  }
  if (!p.tcp.has_ack) {
    if (ft_ != nullptr) ft_block();
    return;
  }

  ++stats_.acks_received;
  if (p.tcp.ece) ++stats_.ece_acks_received;

  if (config_.sack_enabled && p.tcp.num_sack > 0) {
    update_scoreboard(p.tcp);
  }

  const std::int64_t ack = p.tcp.ack;
  if (ack > snd_una_) {
    on_new_ack(ack, p.tcp.ece, p.int_stack);
  } else if (ack == snd_una_ && snd_nxt_ > snd_una_) {
    on_duplicate_ack(p.tcp.ece, p.int_stack);
  }
  // ACKs below snd_una_ are stale; ignore.

  // Sanity-check the window the congestion controller just produced: a
  // non-positive or absurd cwnd here means a CCA bug, not congestion.
  if (auto* a = INCAST_AUDITOR(sim_)) a->check_cwnd(flow_, effective_cwnd());

  if (ft_ != nullptr) ft_block();
}

void TcpSender::on_nack(const net::Packet& p) {
  // Receiver-driven recovery for trimmed packets: the NACK names exactly
  // the segment whose payload a trimming queue cut, so retransmit it
  // immediately — no dup-ACK threshold, no RTO. The CE echo is counted but
  // deliberately NOT fed to the CCA: a trimming queue marks its data ring
  // at the ECN threshold below the trim point, so the congestion signal
  // already reaches the sender byte-weighted through surviving ACKs.
  // Triggering DCTCP's once-per-window decrease again for each trimmed
  // packet double-counts the same queue excursion and collapses senders
  // that NDP-style recovery is meant to keep at line rate.
  ++stats_.nacks_received;
  if (p.tcp.ece) ++stats_.ece_acks_received;

  const std::int64_t seq = p.tcp.seq;
  if (seq < snd_una_ || seq >= snd_nxt_) return;  // already acked or stale

  // Skip if the range has since been SACKed (a retransmit already landed).
  const std::int64_t len =
      std::min(config_.mss_bytes, std::min(max_sent_, app_limit_) - seq);
  if (len <= 0) return;
  for (const auto& [s, e] : sacked_) {
    if (s <= seq && e >= seq + len) return;
  }

  ++stats_.nack_retransmits;
  send_segment(seq, len);
  rearm_rto();
}

void TcpSender::update_scoreboard(const net::TcpHeader& tcp) {
  for (int i = 0; i < tcp.num_sack; ++i) {
    ++stats_.sack_blocks_processed;
    std::int64_t start = std::max(tcp.sack[static_cast<std::size_t>(i)].start, snd_una_);
    std::int64_t end = std::min(tcp.sack[static_cast<std::size_t>(i)].end, snd_nxt_);
    if (start >= end) continue;

    // Merge [start, end) into the disjoint scoreboard, counting only the
    // bytes not already recorded.
    auto it = sacked_.lower_bound(start);
    if (it != sacked_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= start) {
        start = prev->first;
        end = std::max(end, prev->second);
        sacked_bytes_ -= prev->second - prev->first;
        it = sacked_.erase(prev);
      }
    }
    while (it != sacked_.end() && it->first <= end) {
      end = std::max(end, it->second);
      sacked_bytes_ -= it->second - it->first;
      it = sacked_.erase(it);
    }
    sacked_.emplace(start, end);
    sacked_bytes_ += end - start;
  }
}

void TcpSender::drop_scoreboard_below(std::int64_t seq) {
  while (!sacked_.empty()) {
    auto it = sacked_.begin();
    if (it->second <= seq) {
      sacked_bytes_ -= it->second - it->first;
      sacked_.erase(it);
    } else if (it->first < seq) {
      sacked_bytes_ -= seq - it->first;
      const std::int64_t end = it->second;
      sacked_.erase(it);
      sacked_.emplace(seq, end);
      break;
    } else {
      break;
    }
  }
}

std::pair<std::int64_t, std::int64_t> TcpSender::next_hole() const {
  std::int64_t start = std::max(snd_una_, recovery_retx_cursor_);
  // Skip past any sacked ranges covering `start`.
  for (const auto& [s, e] : sacked_) {
    if (e <= start) continue;
    if (s > start) break;  // `start` sits in a gap
    start = e;
  }
  const std::int64_t limit = std::min(recover_seq_, app_limit_);
  if (start >= limit) return {0, 0};

  std::int64_t end = std::min(start + config_.mss_bytes, limit);
  // Do not run into the next sacked block.
  const auto it = sacked_.upper_bound(start);
  if (it != sacked_.end() && it->first < end) end = it->first;
  return {start, end - start};
}

AckEvent TcpSender::make_ack_event(std::int64_t newly_acked, bool ece) const noexcept {
  AckEvent ev;
  ev.newly_acked_bytes = newly_acked;
  ev.ece = ece;
  ev.snd_una = snd_una_;
  ev.snd_nxt = snd_nxt_;
  ev.in_flight = in_flight_bytes();
  ev.now = sim_.now();
  ev.app_limited = snd_nxt_ >= app_limit_;
  return ev;
}

void TcpSender::on_new_ack(std::int64_t ack, bool ece, const net::IntStack& int_stack) {
  const std::int64_t newly_acked = ack - snd_una_;
  snd_una_ = ack;
  // After an RTO's go-back-N, data buffered out-of-order at the receiver
  // can make the cumulative ACK jump past the collapsed send point; keep
  // the snd_una <= snd_nxt invariant so pipe accounting stays sane.
  snd_nxt_ = std::max(snd_nxt_, snd_una_);
  drop_scoreboard_below(ack);
  dup_acks_ = 0;
  rto_backoff_ = 0;  // new progress resets the backoff

  // RTT sample (Karn's rule: sample_end_seq_ was invalidated if the timed
  // segment's range was retransmitted).
  AckEvent ev = make_ack_event(newly_acked, ece);
  ev.int_stack = int_stack;
  if (sample_end_seq_ >= 0 && ack >= sample_end_seq_) {
    ev.rtt_valid = true;
    ev.rtt = sim_.now() - sample_sent_at_;
    rtt_.add_sample(ev.rtt);
    sample_end_seq_ = -1;
  }

  if (in_recovery_) {
    if (ack >= recover_seq_) {
      in_recovery_ = false;
      cc_->on_recovery_exit();
      if (hub_ != nullptr) close_recovery_span();
    } else {
      // Partial ACK: the next hole was also lost; retransmit it
      // immediately (RFC 6582 §3.2 / RFC 6675's NextSeg with the SACK
      // scoreboard skipping already-delivered ranges).
      retransmit_holes();
    }
  }

  cc_->on_ack(ev);
  if (hub_ != nullptr) maybe_emit_cwnd();

  // Forward progress: the quiet episode (if any) is over.
  tlp_probe_outstanding_ = false;
  if (snd_una_ == snd_nxt_) {
    cancel_rto();
    cancel_tlp();
  } else {
    rearm_rto();
    if (config_.tail_loss_probe && !in_recovery_) arm_tlp();
  }

  try_send();

  // Close the tracer's active period before the completion callback — the
  // callback may push the next burst, which opens a fresh period.
  if (ft_ != nullptr && all_acked()) {
    ft_->on_flow_complete(flow_, sim_.now().ns());
  }

  if (on_ack_advance_) on_ack_advance_(snd_una_);
  if (all_acked() && on_all_acked_) {
    on_all_acked_();
  }
}

void TcpSender::on_duplicate_ack(bool ece, const net::IntStack& int_stack) {
  ++dup_acks_;
  AckEvent ev = make_ack_event(0, ece);
  ev.int_stack = int_stack;
  cc_->on_ack(ev);
  if (hub_ != nullptr) maybe_emit_cwnd();

  // RFC 6675-style early entry: three duplicate ACKs, or SACK evidence of
  // at least DupThresh segments having left the network.
  const bool sack_loss = config_.sack_enabled &&
                         sacked_bytes_ >= config_.dupack_threshold * config_.mss_bytes;
  if (!in_recovery_ && (dup_acks_ >= config_.dupack_threshold || sack_loss)) {
    enter_recovery();
  } else if (in_recovery_) {
    // Each duplicate ACK signals a departure; keep filling holes while the
    // window allows.
    retransmit_holes();
  } else if (config_.limited_transmit && dup_acks_ <= 2 && snd_nxt_ < app_limit_ &&
             pipe_bytes() <= effective_cwnd() + 2 * config_.mss_bytes) {
    // Limited transmit (RFC 3042): the first two duplicate ACKs may each
    // release one new segment, keeping the ACK clock alive at small
    // windows.
    const std::int64_t len = std::min(config_.mss_bytes, app_limit_ - snd_nxt_);
    send_segment(snd_nxt_, len);
    snd_nxt_ += len;
    max_sent_ = std::max(max_sent_, snd_nxt_);
    ++stats_.limited_transmits;
  }
  try_send();
}

void TcpSender::enter_recovery() {
  in_recovery_ = true;
  recover_seq_ = snd_nxt_;
  recovery_retx_cursor_ = snd_una_;
  cancel_tlp();  // loss recovery supersedes the probe
  ++stats_.fast_retransmits;
  if (hub_ != nullptr && hub_->tracing() && !recovery_span_open_) {
    recovery_span_open_ = true;
    hub_->begin(sim_.now().ns(), obs::TraceCategory::kTcp, "fast_recovery", trace_tid_,
                "flow", flow_);
  }
  cc_->on_loss(in_flight_bytes());
  if (hub_ != nullptr) maybe_emit_cwnd();
  retransmit_head();
}

void TcpSender::retransmit_head() {
  // The first retransmission of a recovery episode: always allowed, even
  // if the post-loss window is already full.
  auto [seq, len] = next_hole();
  if (len <= 0) return;
  send_segment(seq, len);
  recovery_retx_cursor_ = seq + len;
}

void TcpSender::retransmit_holes() {
  // One hole per ACK (packet conservation): each arriving ACK lets one
  // retransmission out, provided the window has room.
  auto [seq, len] = next_hole();
  if (len <= 0) return;
  if (pipe_bytes() + len > effective_cwnd() + config_.mss_bytes) return;
  send_segment(seq, len);
  recovery_retx_cursor_ = seq + len;
}

void TcpSender::try_send() {
  const std::int64_t cwnd = effective_cwnd();
  if (cwnd < config_.mss_bytes) {
    paced_send(cwnd);
    return;
  }
  while (snd_nxt_ < app_limit_) {
    const std::int64_t len = std::min(config_.mss_bytes, app_limit_ - snd_nxt_);
    // Window check on "pipe" (outstanding minus SACKed): outside recovery
    // the scoreboard is empty and this is the classic in-flight check.
    if (pipe_bytes() + len > cwnd) break;
    send_segment(snd_nxt_, len);
    snd_nxt_ += len;
    max_sent_ = std::max(max_sent_, snd_nxt_);
  }
}

void TcpSender::paced_send(std::int64_t cwnd) {
  if (snd_nxt_ >= app_limit_ || pipe_bytes() > 0) return;

  const sim::Time now = sim_.now();
  if (now < pace_next_) {
    // Too soon: wake up when the pacing gap has elapsed.
    if (pace_timer_ == sim::kInvalidEventId) {
      pace_timer_ = sim_.schedule_at_keyed(pace_next_, local_.next_event_key(), [this] {
        pace_timer_ = sim::kInvalidEventId;
        if (ft_ != nullptr) ft_unblock(obs::FlowTracer::UnblockCause::kTimer);
        try_send();
        if (ft_ != nullptr) ft_block();
      }, sim::EventCategory::kTcp);
    }
    return;
  }

  const std::int64_t len = std::min(config_.mss_bytes, app_limit_ - snd_nxt_);
  send_segment(snd_nxt_, len);
  snd_nxt_ += len;
  max_sent_ = std::max(max_sent_, snd_nxt_);

  // One packet per (mss / cwnd) base RTTs: with cwnd = 0.25 MSS, a packet
  // every four RTTs. The base (min) RTT is used so queueing delay does not
  // feed back into the pacing rate.
  const sim::Time rtt =
      rtt_.has_sample() ? rtt_.min_rtt() : sim::Time::microseconds(30);
  const double packets_per_rtt =
      static_cast<double>(std::max<std::int64_t>(cwnd, 1)) /
      static_cast<double>(config_.mss_bytes);
  pace_next_ = now + rtt * (1.0 / packets_per_rtt);
}

void TcpSender::send_segment(std::int64_t seq, std::int64_t len) {
  assert(len > 0);
  net::Packet p = net::make_data_packet(local_.id(), remote_, flow_, seq, len);
  p.sent_at = sim_.now();
  p.int_stack.enabled = config_.int_telemetry;
  p.flow_traced = ft_ != nullptr;

  const bool is_retx = seq + len <= max_sent_;
  p.is_retransmit = is_retx;

  ++stats_.data_packets_sent;
  stats_.data_bytes_sent += len;
  if (is_retx) {
    ++stats_.retransmitted_packets;
    stats_.retransmitted_bytes += len;
    // Karn's rule: a retransmission overlapping the timed segment
    // invalidates the pending RTT sample.
    if (sample_end_seq_ >= 0 && seq < sample_end_seq_) {
      sample_end_seq_ = -1;
    }
  } else if (sample_end_seq_ < 0) {
    sample_end_seq_ = seq + len;
    sample_sent_at_ = sim_.now();
  }

  last_activity_ = sim_.now();
  local_.send(std::move(p));
  arm_rto();
  if (config_.tail_loss_probe && !in_recovery_ && !tlp_probe_outstanding_) {
    arm_tlp();
  }
}

void TcpSender::arm_tlp() {
  cancel_tlp();
  const sim::Time srtt =
      rtt_.has_sample() ? rtt_.srtt() : rtt_.config().initial_rto;
  sim::Time pto = srtt * config_.pto_srtt_multiplier;
  if (pto < config_.min_pto) pto = config_.min_pto;
  tlp_timer_ = sim_.schedule_in_keyed(pto, local_.next_event_key(), [this] {
    tlp_timer_ = sim::kInvalidEventId;
    on_pto();
  }, sim::EventCategory::kTcp);
}

void TcpSender::cancel_tlp() {
  sim_.cancel(tlp_timer_);
  tlp_timer_ = sim::kInvalidEventId;
}

void TcpSender::on_pto() {
  // A probe timeout: no ACK for ~2 SRTT with data outstanding. Retransmit
  // the highest-sent segment (or send new data if available) to elicit a
  // SACK/dupACK response; fast recovery then repairs the actual hole
  // without waiting out the RTO (RFC 8985 §7.3, simplified).
  if (snd_una_ >= snd_nxt_ || in_recovery_) return;

  if (ft_ != nullptr) ft_unblock(obs::FlowTracer::UnblockCause::kTimer);
  ++stats_.tlp_probes;
  tlp_probe_outstanding_ = true;  // at most one probe per quiet episode

  if (snd_nxt_ < app_limit_) {
    const std::int64_t len = std::min(config_.mss_bytes, app_limit_ - snd_nxt_);
    send_segment(snd_nxt_, len);
    snd_nxt_ += len;
    max_sent_ = std::max(max_sent_, snd_nxt_);
  } else {
    const std::int64_t len = std::min(config_.mss_bytes, snd_nxt_ - snd_una_);
    send_segment(snd_nxt_ - len, len);
  }
  // The RTO (re-armed by send_segment if needed) remains the backstop.
  if (ft_ != nullptr) ft_block();
}

sim::Time TcpSender::current_rto() const noexcept {
  sim::Time rto = rtt_.rto();
  for (int i = 0; i < rto_backoff_; ++i) {
    rto = rto * 2;
    if (rto > rtt_.config().max_rto) return rtt_.config().max_rto;
  }
  return rto;
}

void TcpSender::arm_rto() {
  if (rto_timer_ != sim::kInvalidEventId) return;
  if (auto* a = INCAST_AUDITOR(sim_)) a->check_rto(flow_, current_rto());
  rto_timer_ = sim_.schedule_in_keyed(current_rto(), local_.next_event_key(), [this] {
    rto_timer_ = sim::kInvalidEventId;
    on_rto();
  }, sim::EventCategory::kTcp);
}

void TcpSender::rearm_rto() {
  cancel_rto();
  arm_rto();
}

void TcpSender::cancel_rto() {
  sim_.cancel(rto_timer_);
  rto_timer_ = sim::kInvalidEventId;
}

void TcpSender::on_rto() {
  if (snd_una_ >= snd_nxt_) {
    // Stale timer: nothing is outstanding. If the application still has
    // unsent data (e.g. a pacing gap was pending when the flow went
    // idle), revive transmission rather than going silent.
    if (ft_ != nullptr) ft_unblock(obs::FlowTracer::UnblockCause::kTimer);
    try_send();
    if (ft_ != nullptr) ft_block();
    return;
  }

  if (ft_ != nullptr) ft_unblock(obs::FlowTracer::UnblockCause::kRto);
  ++stats_.timeouts;
  rto_backoff_ = std::min(rto_backoff_ + 1, kMaxRtoBackoff);
  if (hub_ != nullptr) {
    // "rto" is also the flight recorder's storm-trigger event name.
    hub_->instant(sim_.now().ns(), obs::TraceCategory::kTcp, "rto", trace_tid_,
                  "flow", flow_, "backoff", rto_backoff_);
    close_recovery_span();  // go-back-N abandons any in-progress recovery
  }
  cc_->on_timeout();
  if (hub_ != nullptr) maybe_emit_cwnd();

  // Go-back-N: collapse the send point to the cumulative ACK. max_sent_
  // keeps its value so the re-sent range is accounted as retransmission.
  // The scoreboard is discarded with it (everything will be re-sent).
  snd_nxt_ = snd_una_;
  in_recovery_ = false;
  dup_acks_ = 0;
  sample_end_seq_ = -1;
  sacked_.clear();
  sacked_bytes_ = 0;
  cancel_tlp();
  tlp_probe_outstanding_ = false;

  try_send();
  arm_rto();
  if (ft_ != nullptr) ft_block();
}

}  // namespace incast::tcp
