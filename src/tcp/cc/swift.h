// SwiftCc: a delay-based CCA in the style of Swift (Kumar et al., SIGCOMM
// 2020), the alternative the paper discusses in Section 5.2.
//
// Swift targets a fixed end-to-end delay: below target it adds roughly one
// `ai` segment per RTT; above target it decreases multiplicatively in
// proportion to the overshoot, at most once per RTT. Its distinguishing
// feature for incast is that cwnd may drop BELOW one packet: the sender
// then paces, emitting one packet every (mss / cwnd) RTTs, so thousands of
// flows can share a queue that window-based DCTCP cannot control (whose
// 1-MSS floor is the paper's "degenerate point").
//
// The paper also lists Swift's costs — pacing starves receiver-side
// batching and staleness grows with the probe interval — which the
// extension bench can now exhibit quantitatively.
#ifndef INCAST_TCP_CC_SWIFT_H_
#define INCAST_TCP_CC_SWIFT_H_

#include "tcp/congestion_control.h"

namespace incast::tcp {

struct SwiftConfig {
  sim::Time target_delay{sim::Time::microseconds(60)};  // ~2x base RTT here
  double additive_increase_segments{1.0};  // ai: segments per RTT below target
  double beta{0.8};                        // proportional decrease strength
  double max_mdf{0.5};                     // max multiplicative decrease per RTT
  double min_cwnd_segments{0.01};          // Swift allows far below one packet
  std::int64_t mss_bytes{1460};
  std::int64_t initial_window_segments{10};
};

class SwiftCc final : public CongestionControl {
 public:
  explicit SwiftCc(const SwiftConfig& config) noexcept
      : config_{config},
        cwnd_{static_cast<double>(config.initial_window_segments * config.mss_bytes)} {}

  void on_ack(const AckEvent& ev) override;
  void on_loss(std::int64_t in_flight) override;
  void on_timeout() override;
  void on_recovery_exit() override {}

  [[nodiscard]] std::int64_t cwnd_bytes() const override {
    return static_cast<std::int64_t>(cwnd_);
  }
  [[nodiscard]] std::int64_t ssthresh_bytes() const override { return 0; }
  [[nodiscard]] bool in_slow_start() const override { return false; }
  [[nodiscard]] std::string name() const override { return "swift"; }

  void reset_to_initial_window() override {
    cwnd_ = static_cast<double>(config_.initial_window_segments * config_.mss_bytes);
  }

  [[nodiscard]] const SwiftConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] double min_cwnd_bytes() const noexcept {
    return config_.min_cwnd_segments * static_cast<double>(config_.mss_bytes);
  }
  void decrease(double factor, sim::Time now, sim::Time rtt) noexcept;

  SwiftConfig config_;
  double cwnd_;  // bytes; may be fractional (< 1 MSS)
  bool has_decreased_{false};
  sim::Time last_decrease_{sim::Time::zero()};
  sim::Time last_rtt_{sim::Time::zero()};
};

[[nodiscard]] std::unique_ptr<CongestionControl> make_swift(const SwiftConfig& config);

}  // namespace incast::tcp

#endif  // INCAST_TCP_CC_SWIFT_H_
