#include "tcp/cc/swift.h"

#include <algorithm>

namespace incast::tcp {

void SwiftCc::decrease(double factor, sim::Time now, sim::Time rtt) noexcept {
  // At most one multiplicative decrease per RTT (the first is always
  // allowed).
  if (has_decreased_ && now - last_decrease_ < rtt) return;
  has_decreased_ = true;
  last_decrease_ = now;
  factor = std::max(factor, 1.0 - config_.max_mdf);
  cwnd_ = std::max(cwnd_ * factor, min_cwnd_bytes());
}

void SwiftCc::on_ack(const AckEvent& ev) {
  if (ev.rtt_valid) last_rtt_ = ev.rtt;
  if (last_rtt_ == sim::Time::zero() || ev.newly_acked_bytes <= 0) return;

  const double delay = last_rtt_.sec();
  const double target = config_.target_delay.sec();
  const auto mss = static_cast<double>(config_.mss_bytes);

  if (delay <= target) {
    // Additive increase: ~ai segments per RTT. Above one packet the
    // per-ACK share is ai * mss * acked / cwnd; below it each (rare) ACK
    // adds a full ai segment, as in Swift.
    const double ai = config_.additive_increase_segments * mss;
    if (cwnd_ >= mss) {
      cwnd_ += ai * static_cast<double>(ev.newly_acked_bytes) / cwnd_;
    } else {
      cwnd_ += ai;
    }
  } else {
    decrease(1.0 - config_.beta * (delay - target) / delay, ev.now, last_rtt_);
  }
}

void SwiftCc::on_loss(std::int64_t /*in_flight*/) {
  // Retransmit-triggered decrease: applied immediately (losses are a
  // stronger signal than delay, no per-RTT gating).
  cwnd_ = std::max(cwnd_ * (1.0 - config_.max_mdf), min_cwnd_bytes());
}

void SwiftCc::on_timeout() {
  cwnd_ = std::max(min_cwnd_bytes(), cwnd_ * (1.0 - config_.max_mdf));
}

std::unique_ptr<CongestionControl> make_swift(const SwiftConfig& config) {
  return std::make_unique<SwiftCc>(config);
}

}  // namespace incast::tcp
