// HpccCc: High Precision Congestion Control (Li et al., SIGCOMM 2019),
// simplified — one of the INT-based techniques the paper cites as handling
// hundreds-to-thousands-of-flow incasts at the cost of switch support.
//
// Every ACK echoes per-hop INT records (queue length, cumulative tx bytes,
// link rate, timestamp). For each hop the sender estimates utilization
//
//   U_j = qlen_j / (B_j * T)  +  txRate_j / B_j
//
// where T is the base RTT and txRate_j is computed from consecutive INT
// samples of the same hop. The window update is multiplicative toward the
// target utilization eta with a small additive probe:
//
//   W = W_c * eta / max_j(U_j) + W_ai
//
// with W_c (the reference window) advanced at most once per RTT, and up to
// `max_stage` additive-only stages between multiplicative updates. Like
// Swift, the window may fall below one MSS; the sender then paces.
#ifndef INCAST_TCP_CC_HPCC_H_
#define INCAST_TCP_CC_HPCC_H_

#include <array>

#include "tcp/congestion_control.h"

namespace incast::tcp {

struct HpccConfig {
  double eta{0.95};                 // target link utilization
  int max_stage{5};                 // additive-only stages per W_c update
  std::int64_t wai_bytes{80};       // additive increase per update (N flows add ~N*wai of standing queue)
  sim::Time base_rtt{sim::Time::microseconds(30)};
  double min_cwnd_segments{0.01};
  // Upper clamp: HPCC initializes W to ~BDP and never needs more than the
  // path BDP / eta; without a cap, near-idle INT samples (U ~ 0) would let
  // an app-limited flow multiply its window unboundedly.
  double max_cwnd_segments{32.0};
  std::int64_t mss_bytes{1460};
  std::int64_t initial_window_segments{10};
};

class HpccCc final : public CongestionControl {
 public:
  explicit HpccCc(const HpccConfig& config) noexcept
      : config_{config},
        cwnd_{static_cast<double>(config.initial_window_segments * config.mss_bytes)},
        reference_cwnd_{cwnd_} {}

  void on_ack(const AckEvent& ev) override;
  void on_loss(std::int64_t in_flight) override;
  void on_timeout() override;
  void on_recovery_exit() override {}

  [[nodiscard]] std::int64_t cwnd_bytes() const override {
    return static_cast<std::int64_t>(cwnd_);
  }
  [[nodiscard]] std::int64_t ssthresh_bytes() const override { return 0; }
  [[nodiscard]] bool in_slow_start() const override { return false; }
  [[nodiscard]] std::string name() const override { return "hpcc"; }
  void reset_to_initial_window() override {
    cwnd_ = static_cast<double>(config_.initial_window_segments * config_.mss_bytes);
    reference_cwnd_ = cwnd_;
  }

  // Most recent max-hop utilization estimate (diagnostics).
  [[nodiscard]] double last_utilization() const noexcept { return last_util_; }

 private:
  [[nodiscard]] double min_cwnd_bytes() const noexcept {
    return config_.min_cwnd_segments * static_cast<double>(config_.mss_bytes);
  }
  // Computes max-hop utilization from the echoed INT stack; returns false
  // when no estimate is possible yet (first sample of a hop).
  [[nodiscard]] bool measure_utilization(const net::IntStack& stack, double& out);

  HpccConfig config_;
  double cwnd_;            // bytes, may be fractional
  double reference_cwnd_;  // W_c
  int inc_stage_{0};
  double last_util_{0.0};
  sim::Time last_reference_update_{sim::Time::zero()};

  // Previous INT sample per hop index, for txRate estimation.
  struct HopSample {
    std::int64_t tx_bytes{0};
    std::int64_t timestamp_ns{0};
    bool valid{false};
  };
  std::array<HopSample, net::kMaxIntHops> prev_{};
};

[[nodiscard]] std::unique_ptr<CongestionControl> make_hpcc(const HpccConfig& config);

}  // namespace incast::tcp

#endif  // INCAST_TCP_CC_HPCC_H_
