// DcqcnCc: a window-based approximation of DCQCN (Zhu et al., SIGCOMM'15).
//
// Real DCQCN is a *rate*-based scheme running in the NIC: the switch marks
// with a RED-like kmin/kmax probability curve, the receiver coalesces marks
// into CNPs (at most one per 50 us), and the sender keeps an EWMA `alpha`
// updated on a 55 us timer rather than per window of data:
//
//   on CNP:            rate  = rate * (1 - alpha / 2), at most once per
//                      rate-decrease interval (~50 us)
//   every 55 us:       alpha = (1 - g) * alpha + g * [CNP seen this
//                      interval], with g = 1/256
//
// This class transplants those time-domain rules onto the repo's
// window-based sender so DCQCN slots in wherever DCTCP/Swift/HPCC do: ECE
// on an ACK stands in for the CNP, the multiplicative decrease applies to
// cwnd, and recovery between decreases uses the standard additive increase
// (a stand-in for DCQCN's fast-recovery/additive-increase rate stages).
// The two differences from DCTCP that matter for the lossless experiments
// survive the transplant exactly:
//
//  - alpha moves on wall-clock intervals, not per-RTT windows, so under
//    PFC pauses (where the RTT balloons and windows stall) alpha keeps
//    converging instead of freezing; and
//  - the decrease is gated by elapsed time, not by a window of data, so a
//    burst of marks within one RTT cuts at most once per 50 us rather
//    than once per window.
#ifndef INCAST_TCP_CC_DCQCN_H_
#define INCAST_TCP_CC_DCQCN_H_

#include "tcp/cc/window_cc.h"

namespace incast::tcp {

class DcqcnCc final : public WindowCc {
 public:
  explicit DcqcnCc(const CcConfig& config) noexcept
      : WindowCc{config}, alpha_{config.dcqcn_initial_alpha} {}

  void on_ack(const AckEvent& ev) override;
  void on_loss(std::int64_t in_flight) override;
  void on_timeout() override;

  [[nodiscard]] std::string name() const override { return "dcqcn"; }

  [[nodiscard]] double alpha() const noexcept { return alpha_; }

 private:
  // Rolls the alpha EWMA forward over every whole update interval that has
  // elapsed since the last roll (marks seen only in the most recent one).
  void advance_alpha(sim::Time now);

  double alpha_;
  bool interval_start_valid_{false};
  sim::Time interval_start_{};   // start of the current alpha interval
  bool marked_this_interval_{false};
  bool decrease_time_valid_{false};
  sim::Time last_decrease_{};    // last multiplicative decrease
};

[[nodiscard]] std::unique_ptr<CongestionControl> make_dcqcn(const CcConfig& config);

}  // namespace incast::tcp

#endif  // INCAST_TCP_CC_DCQCN_H_
