// WindowCc: shared machinery for the window-based CCAs (Reno, DCTCP, CUBIC).
//
// Implements slow start, congestion avoidance byte counting, the timeout
// collapse to 1 MSS, and the cwnd floor. Subclasses specialize the
// multiplicative-decrease rule and the response to ECN-Echo.
#ifndef INCAST_TCP_CC_WINDOW_CC_H_
#define INCAST_TCP_CC_WINDOW_CC_H_

#include <algorithm>
#include <limits>

#include "tcp/congestion_control.h"

namespace incast::tcp {

class WindowCc : public CongestionControl {
 public:
  explicit WindowCc(const CcConfig& config) noexcept
      : config_{config},
        cwnd_{config.initial_window_segments * config.mss_bytes},
        ssthresh_{std::numeric_limits<std::int64_t>::max()} {}

  [[nodiscard]] std::int64_t cwnd_bytes() const override { return cwnd_; }
  [[nodiscard]] std::int64_t ssthresh_bytes() const override { return ssthresh_; }
  [[nodiscard]] bool in_slow_start() const override { return cwnd_ < ssthresh_; }

  void on_timeout() override {
    // RFC 5681: ssthresh = max(FlightSize/2, 2 MSS) is applied by the
    // caller-supplied in_flight at loss time; on RTO we conservatively use
    // cwnd/2 since flight collapses to the retransmitted segment.
    ssthresh_ = std::max(cwnd_ / 2, 2 * mss());
    cwnd_ = mss();  // RFC 5681: LW = 1 segment
  }

  void on_recovery_exit() override {
    // Deflate to ssthresh (NewReno exit).
    cwnd_ = std::max(ssthresh_, mss());
  }

  void reset_to_initial_window() override {
    cwnd_ = config_.initial_window_segments * mss();
  }

 protected:
  [[nodiscard]] std::int64_t mss() const noexcept { return config_.mss_bytes; }
  [[nodiscard]] const CcConfig& config() const noexcept { return config_; }

  // Standard additive increase, called by subclasses for non-duplicate ACKs.
  void increase_on_ack(std::int64_t newly_acked_bytes) noexcept {
    if (newly_acked_bytes <= 0) return;
    if (in_slow_start()) {
      // Slow start: one MSS per MSS acked, at most one MSS per ACK (ABC L=1).
      cwnd_ += std::min(newly_acked_bytes, mss());
    } else {
      // Congestion avoidance, byte-counted: ~1 MSS per RTT.
      increase_credit_ += newly_acked_bytes;
      const std::int64_t step = std::max<std::int64_t>(cwnd_, mss());
      if (increase_credit_ >= step) {
        increase_credit_ -= step;
        cwnd_ += mss();
      }
    }
  }

  // Multiplicative decrease to `target`, with the paper's 1-MSS floor.
  void decrease_to(std::int64_t target) noexcept {
    cwnd_ = std::max(target, mss());
    ssthresh_ = std::max(cwnd_, mss());
  }

  void set_ssthresh(std::int64_t v) noexcept { ssthresh_ = std::max(v, mss()); }

  // Direct cwnd override for CCAs whose growth is not purely additive
  // (CUBIC). Floors at 1 MSS.
  void set_cwnd(std::int64_t v) noexcept { cwnd_ = std::max(v, mss()); }

 private:
  CcConfig config_;
  std::int64_t cwnd_;
  std::int64_t ssthresh_;
  std::int64_t increase_credit_{0};
};

}  // namespace incast::tcp

#endif  // INCAST_TCP_CC_WINDOW_CC_H_
