#include "tcp/cc/cubic.h"

#include <algorithm>
#include <cmath>

#include "tcp/cc/dcqcn.h"
#include "tcp/cc/hpcc.h"
#include "tcp/cc/swift.h"

namespace incast::tcp {

void CubicCc::start_epoch(sim::Time now) noexcept {
  // W_max was recorded at the last decrease; if we have grown past it since
  // (e.g. after an idle period), treat the current window as the new W_max.
  const double current = static_cast<double>(cwnd_bytes()) / static_cast<double>(mss());
  w_max_segments_ = std::max(w_max_segments_, current);
  epoch_start_ = now;
  epoch_active_ = true;
}

void CubicCc::on_ack(const AckEvent& ev) {
  if (ev.newly_acked_bytes <= 0) return;

  if (in_slow_start()) {
    increase_on_ack(ev.newly_acked_bytes);
    return;
  }
  if (!epoch_active_) {
    start_epoch(ev.now);
  }

  const double c = config().cubic_c;
  const double beta = config().cubic_beta;
  const double t = (ev.now - epoch_start_).sec();
  const double k = std::cbrt(w_max_segments_ * (1.0 - beta) / c);
  const double target_segments = c * std::pow(t - k, 3.0) + w_max_segments_;
  const auto target_bytes =
      static_cast<std::int64_t>(target_segments * static_cast<double>(mss()));

  if (target_bytes > cwnd_bytes()) {
    // Approach the cubic target smoothly: close the gap by cwnd/target per
    // ACK rather than jumping (RFC 9438 §4.4's per-ACK increment).
    const std::int64_t gap = target_bytes - cwnd_bytes();
    const std::int64_t step = std::max<std::int64_t>(
        gap * ev.newly_acked_bytes / std::max<std::int64_t>(cwnd_bytes(), mss()), 0);
    set_cwnd(cwnd_bytes() + std::min(step, mss()));
  }
}

void CubicCc::on_loss(std::int64_t /*in_flight*/) {
  const double beta = config().cubic_beta;
  const double current = static_cast<double>(cwnd_bytes()) / static_cast<double>(mss());
  w_max_segments_ = current;
  epoch_active_ = false;  // the next ACK restarts the epoch with this W_max
  decrease_to(static_cast<std::int64_t>(current * beta * static_cast<double>(mss())));
}

void CubicCc::on_timeout() {
  WindowCc::on_timeout();
  epoch_active_ = false;
  w_max_segments_ = 0.0;
}

std::unique_ptr<CongestionControl> make_cubic(const CcConfig& config) {
  return std::make_unique<CubicCc>(config);
}

std::unique_ptr<CongestionControl> make_congestion_control(CcAlgorithm algo,
                                                           const CcConfig& config) {
  switch (algo) {
    case CcAlgorithm::kReno:
      return make_reno(config, /*ecn_enabled=*/false);
    case CcAlgorithm::kRenoEcn:
      return make_reno(config, /*ecn_enabled=*/true);
    case CcAlgorithm::kDctcp:
      return make_dctcp(config);
    case CcAlgorithm::kCubic:
      return make_cubic(config);
    case CcAlgorithm::kSwift: {
      SwiftConfig swift;
      swift.mss_bytes = config.mss_bytes;
      swift.initial_window_segments = config.initial_window_segments;
      swift.target_delay = config.swift_target_delay;
      swift.additive_increase_segments = config.swift_additive_increase_segments;
      swift.beta = config.swift_beta;
      swift.max_mdf = config.swift_max_mdf;
      swift.min_cwnd_segments = config.swift_min_cwnd_segments;
      return make_swift(swift);
    }
    case CcAlgorithm::kHpcc: {
      HpccConfig hpcc;
      hpcc.mss_bytes = config.mss_bytes;
      hpcc.initial_window_segments = config.initial_window_segments;
      hpcc.eta = config.hpcc_eta;
      hpcc.max_stage = config.hpcc_max_stage;
      hpcc.wai_bytes = config.hpcc_wai_bytes;
      hpcc.base_rtt = config.hpcc_base_rtt;
      hpcc.min_cwnd_segments = config.hpcc_min_cwnd_segments;
      return make_hpcc(hpcc);
    }
    case CcAlgorithm::kDcqcn:
      return make_dcqcn(config);
  }
  return make_dctcp(config);
}

const char* to_string(CcAlgorithm algo) noexcept {
  switch (algo) {
    case CcAlgorithm::kReno:
      return "reno";
    case CcAlgorithm::kRenoEcn:
      return "reno-ecn";
    case CcAlgorithm::kDctcp:
      return "dctcp";
    case CcAlgorithm::kCubic:
      return "cubic";
    case CcAlgorithm::kSwift:
      return "swift";
    case CcAlgorithm::kHpcc:
      return "hpcc";
    case CcAlgorithm::kDcqcn:
      return "dcqcn";
  }
  return "unknown";
}

}  // namespace incast::tcp
