// RenoCc: TCP NewReno congestion control (RFC 5681/6582), optionally with
// classic ECN response (RFC 3168: treat ECN-Echo like a loss, once per RTT,
// but without retransmitting).
#ifndef INCAST_TCP_CC_RENO_H_
#define INCAST_TCP_CC_RENO_H_

#include "tcp/cc/window_cc.h"

namespace incast::tcp {

class RenoCc final : public WindowCc {
 public:
  RenoCc(const CcConfig& config, bool ecn_enabled) noexcept
      : WindowCc{config}, ecn_enabled_{ecn_enabled} {}

  void on_ack(const AckEvent& ev) override;
  void on_loss(std::int64_t in_flight) override;

  [[nodiscard]] std::string name() const override {
    return ecn_enabled_ ? "reno-ecn" : "reno";
  }

 private:
  bool ecn_enabled_;
  // One ECN-triggered reduction per window: suppressed until snd_una passes
  // the cwnd that was outstanding when we last reduced.
  std::int64_t cwr_end_seq_{-1};
};

}  // namespace incast::tcp

#endif  // INCAST_TCP_CC_RENO_H_
