// DctcpCc: Data Center TCP congestion control (Alizadeh et al., RFC 8257).
//
// The sender keeps an EWMA `alpha` of the fraction of acked bytes that
// carried ECN-Echo, updated once per window of data:
//
//   F     = marked_bytes / acked_bytes        (over the last window)
//   alpha = (1 - g) * alpha + g * F
//
// and on congestion (any ECE seen in a window) reduces proportionally, at
// most once per window:
//
//   cwnd = max(cwnd * (1 - alpha / 2), 1 MSS)
//
// The 1-MSS floor is the root of the paper's Mode 2 "degenerate point"
// (Section 4.1.2): with K flows at the floor, the bottleneck queue cannot
// fall below K - BDP packets no matter what the marking says.
#ifndef INCAST_TCP_CC_DCTCP_H_
#define INCAST_TCP_CC_DCTCP_H_

#include "tcp/cc/window_cc.h"

namespace incast::tcp {

class DctcpCc final : public WindowCc {
 public:
  explicit DctcpCc(const CcConfig& config) noexcept
      : WindowCc{config}, alpha_{config.dctcp_initial_alpha} {}

  void on_ack(const AckEvent& ev) override;
  void on_loss(std::int64_t in_flight) override;
  void on_timeout() override;

  [[nodiscard]] std::string name() const override { return "dctcp"; }

  [[nodiscard]] double alpha() const noexcept { return alpha_; }

 private:
  void finish_observation_window(const AckEvent& ev);

  double alpha_;
  // Byte counters over the current observation window.
  std::int64_t acked_bytes_{0};
  std::int64_t marked_bytes_{0};
  // snd_nxt value at which the current observation window ends. Starts at
  // 0 (the stream origin), mirroring RFC 8257's next_seq = SND.NXT at
  // connection establishment: the first ACK closes a degenerate first
  // window and aligns subsequent windows to snd_nxt.
  std::int64_t window_end_seq_{0};
  // One multiplicative decrease per window.
  std::int64_t cwr_end_seq_{-1};
};

}  // namespace incast::tcp

#endif  // INCAST_TCP_CC_DCTCP_H_
