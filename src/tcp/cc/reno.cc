#include "tcp/cc/reno.h"

namespace incast::tcp {

void RenoCc::on_ack(const AckEvent& ev) {
  if (ecn_enabled_ && ev.ece && ev.snd_una >= cwr_end_seq_) {
    // Classic ECN: respond as if a packet were lost, once per window.
    cwr_end_seq_ = ev.snd_nxt;
    decrease_to(cwnd_bytes() / 2);
    return;  // do not also grow on this ACK
  }
  increase_on_ack(ev.newly_acked_bytes);
}

void RenoCc::on_loss(std::int64_t in_flight) {
  // RFC 5681: ssthresh = max(FlightSize / 2, 2 MSS); cwnd = ssthresh after
  // recovery (we do not model window inflation; the sender allows the
  // recovery retransmissions explicitly).
  decrease_to(std::max(in_flight / 2, 2 * mss()));
}

std::unique_ptr<CongestionControl> make_reno(const CcConfig& config, bool ecn_enabled) {
  return std::make_unique<RenoCc>(config, ecn_enabled);
}

}  // namespace incast::tcp
