#include "tcp/cc/dctcp.h"

#include <algorithm>

namespace incast::tcp {

void DctcpCc::on_ack(const AckEvent& ev) {
  acked_bytes_ += ev.newly_acked_bytes;
  if (ev.ece) marked_bytes_ += ev.newly_acked_bytes;

  if (ev.snd_una >= window_end_seq_) {
    finish_observation_window(ev);
  }

  // One decrease per window: allowed again once snd_una has reached the
  // snd_nxt recorded at the previous decrease (Linux: !before(snd_una,
  // high_seq)).
  if (ev.ece && ev.snd_una >= cwr_end_seq_) {
    // Proportional decrease, at most once per window of data.
    cwr_end_seq_ = ev.snd_nxt;
    const auto reduced =
        static_cast<std::int64_t>(static_cast<double>(cwnd_bytes()) * (1.0 - alpha_ / 2.0));
    decrease_to(reduced);
    return;
  }

  increase_on_ack(ev.newly_acked_bytes);
}

void DctcpCc::finish_observation_window(const AckEvent& ev) {
  if (acked_bytes_ > 0) {
    const double fraction =
        static_cast<double>(marked_bytes_) / static_cast<double>(acked_bytes_);
    const double g = config().dctcp_gain;
    alpha_ = (1.0 - g) * alpha_ + g * fraction;
  }
  acked_bytes_ = 0;
  marked_bytes_ = 0;
  window_end_seq_ = ev.snd_nxt;
}

void DctcpCc::on_loss(std::int64_t in_flight) {
  // DCTCP falls back to the Reno response on actual loss (RFC 8257 §3.4).
  decrease_to(std::max(in_flight / 2, 2 * mss()));
}

void DctcpCc::on_timeout() {
  // RFC 8257 §3.5: DCTCP reacts to loss episodes exactly as conventional
  // TCP does; alpha keeps evolving from its current value.
  WindowCc::on_timeout();
}

std::unique_ptr<CongestionControl> make_dctcp(const CcConfig& config) {
  return std::make_unique<DctcpCc>(config);
}

}  // namespace incast::tcp
