#include "tcp/cc/dcqcn.h"

#include <algorithm>

namespace incast::tcp {

void DcqcnCc::advance_alpha(sim::Time now) {
  const sim::Time interval = config().dcqcn_alpha_update_interval;
  if (!interval_start_valid_) {
    interval_start_valid_ = true;
    interval_start_ = now;
    return;
  }
  const double g = config().dcqcn_gain;
  // Step through every full interval boundary we crossed. Marks belong to
  // the interval they arrived in; the (possibly many) silent intervals
  // after it each decay alpha toward zero, exactly as the 55 us timer
  // would have.
  while (now - interval_start_ >= interval) {
    alpha_ = (1.0 - g) * alpha_ + g * (marked_this_interval_ ? 1.0 : 0.0);
    marked_this_interval_ = false;
    interval_start_ = interval_start_ + interval;
  }
}

void DcqcnCc::on_ack(const AckEvent& ev) {
  advance_alpha(ev.now);
  if (ev.ece) marked_this_interval_ = true;

  if (ev.ece) {
    // CNP-equivalent: cut by alpha/2, but no more than once per
    // rate-decrease interval — DCQCN's NP-side CNP pacing and RP-side
    // decrease timer collapsed into one gate.
    const bool gate_open =
        !decrease_time_valid_ ||
        ev.now - last_decrease_ >= config().dcqcn_rate_decrease_interval;
    if (gate_open) {
      decrease_time_valid_ = true;
      last_decrease_ = ev.now;
      const auto reduced = static_cast<std::int64_t>(
          static_cast<double>(cwnd_bytes()) * (1.0 - alpha_ / 2.0));
      decrease_to(reduced);
      return;
    }
  }

  increase_on_ack(ev.newly_acked_bytes);
}

void DcqcnCc::on_loss(std::int64_t in_flight) {
  // DCQCN assumes a lossless fabric; when packets do die (trimming, fault
  // injection) respond like conventional TCP so recovery stays stable.
  decrease_to(std::max(in_flight / 2, 2 * mss()));
}

void DcqcnCc::on_timeout() {
  WindowCc::on_timeout();
}

std::unique_ptr<CongestionControl> make_dcqcn(const CcConfig& config) {
  return std::make_unique<DcqcnCc>(config);
}

}  // namespace incast::tcp
