#include "tcp/cc/hpcc.h"

#include <algorithm>

namespace incast::tcp {

bool HpccCc::measure_utilization(const net::IntStack& stack, double& out) {
  bool any = false;
  double max_util = 0.0;

  for (int j = 0; j < stack.num_hops; ++j) {
    const net::IntHopRecord& rec = stack.hops[static_cast<std::size_t>(j)];
    HopSample& prev = prev_[static_cast<std::size_t>(j)];
    if (prev.valid && rec.timestamp_ns > prev.timestamp_ns && rec.link_bps > 0) {
      const double dt_sec =
          static_cast<double>(rec.timestamp_ns - prev.timestamp_ns) * 1e-9;
      const double tx_rate_bps =
          static_cast<double>(rec.tx_bytes - prev.tx_bytes) * 8.0 / dt_sec;
      const double bdp_bytes =
          static_cast<double>(rec.link_bps) / 8.0 * config_.base_rtt.sec();
      const double util = static_cast<double>(rec.qlen_bytes) / bdp_bytes +
                          tx_rate_bps / static_cast<double>(rec.link_bps);
      max_util = std::max(max_util, util);
      any = true;
    }
    prev = HopSample{rec.tx_bytes, rec.timestamp_ns, true};
  }

  if (any) out = max_util;
  return any;
}

void HpccCc::on_ack(const AckEvent& ev) {
  if (!ev.int_stack.enabled || ev.int_stack.num_hops == 0) return;

  double util = 0.0;
  if (!measure_utilization(ev.int_stack, util)) return;
  // Guard against division blow-ups when the path is idle.
  util = std::max(util, 0.01);
  last_util_ = util;

  const double wai = static_cast<double>(config_.wai_bytes);
  const double max_cwnd =
      config_.max_cwnd_segments * static_cast<double>(config_.mss_bytes);
  double target = reference_cwnd_ * config_.eta / util + wai;
  target = std::clamp(target, min_cwnd_bytes(), max_cwnd);

  // Growth on an application-limited ACK would be validated against demand
  // that does not exist (RFC 7661); only decreases are applied.
  if (ev.app_limited && target > cwnd_) return;

  if (util >= config_.eta || inc_stage_ >= config_.max_stage) {
    cwnd_ = target;
    if (ev.now - last_reference_update_ >= config_.base_rtt) {
      reference_cwnd_ = cwnd_;
      last_reference_update_ = ev.now;
      inc_stage_ = 0;
    }
  } else {
    // Below target with probing budget left: additive-only stage.
    cwnd_ = std::clamp(std::max(target, cwnd_ + wai), min_cwnd_bytes(), max_cwnd);
    if (ev.now - last_reference_update_ >= config_.base_rtt) {
      reference_cwnd_ = cwnd_;
      last_reference_update_ = ev.now;
      ++inc_stage_;
    }
  }
}

void HpccCc::on_loss(std::int64_t /*in_flight*/) {
  cwnd_ = std::max(cwnd_ * 0.5, min_cwnd_bytes());
  reference_cwnd_ = cwnd_;
}

void HpccCc::on_timeout() {
  cwnd_ = std::max(min_cwnd_bytes(), static_cast<double>(config_.mss_bytes));
  reference_cwnd_ = cwnd_;
  inc_stage_ = 0;
}

std::unique_ptr<CongestionControl> make_hpcc(const HpccConfig& config) {
  return std::make_unique<HpccCc>(config);
}

}  // namespace incast::tcp
