// CubicCc: TCP CUBIC congestion control (RFC 9438), simplified.
//
// Included as a loss-based baseline for the CCA-comparison ablation: CUBIC
// ignores ECN, so under incast it fills the queue to the tail-drop point —
// illustrating why datacenters deploy DCTCP instead.
//
// Window growth in congestion avoidance follows the cubic function
//   W(t) = C * (t - K)^3 + W_max,   K = cbrt(W_max * (1 - beta) / C)
// with W in MSS units and t in seconds since the last decrease.
#ifndef INCAST_TCP_CC_CUBIC_H_
#define INCAST_TCP_CC_CUBIC_H_

#include "tcp/cc/window_cc.h"

namespace incast::tcp {

class CubicCc final : public WindowCc {
 public:
  explicit CubicCc(const CcConfig& config) noexcept : WindowCc{config} {}

  void on_ack(const AckEvent& ev) override;
  void on_loss(std::int64_t in_flight) override;
  void on_timeout() override;

  [[nodiscard]] std::string name() const override { return "cubic"; }

 private:
  void start_epoch(sim::Time now) noexcept;

  // Cubic state, in MSS units.
  double w_max_segments_{0.0};
  sim::Time epoch_start_{sim::Time::zero()};
  bool epoch_active_{false};
};

}  // namespace incast::tcp

#endif  // INCAST_TCP_CC_CUBIC_H_
