// CongestionControl: the pluggable sender-side congestion control interface.
//
// The TcpSender owns the reliability machinery (sequencing, retransmission,
// RTO) and reports events to a CongestionControl, which in turn owns cwnd
// and ssthresh. This split mirrors the Linux tcp_congestion_ops design and
// lets the experiments swap DCTCP, Reno, and CUBIC without touching the
// sender.
#ifndef INCAST_TCP_CONGESTION_CONTROL_H_
#define INCAST_TCP_CONGESTION_CONTROL_H_

#include <cstdint>
#include <memory>
#include <string>

#include "net/packet.h"
#include "sim/time.h"

namespace incast::tcp {

// Delivered to the CCA for every arriving ACK.
struct AckEvent {
  std::int64_t newly_acked_bytes{0};  // 0 for duplicate ACKs
  bool ece{false};                    // ECN-Echo flag on this ACK
  bool rtt_valid{false};
  sim::Time rtt{};           // valid iff rtt_valid
  std::int64_t snd_una{0};   // cumulative ack point after this ACK
  std::int64_t snd_nxt{0};   // highest sequence sent so far
  std::int64_t in_flight{0}; // bytes outstanding after this ACK
  sim::Time now{};
  // True when the sender has no unsent application data: a cautious CCA
  // (kHpcc here, per RFC 7661's reasoning) should not grow the window on
  // such ACKs — growth would be validated against demand that does not
  // exist, which is exactly the burst-boundary "unlearning" of §4.3.
  bool app_limited{false};
  // INT telemetry echoed by the receiver (empty unless the connection
  // runs with int_telemetry enabled and switches stamp it).
  net::IntStack int_stack{};
};

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  // Called for every cumulative or duplicate ACK.
  virtual void on_ack(const AckEvent& ev) = 0;

  // Called when fast retransmit infers a loss (entering recovery). Must
  // perform the multiplicative decrease.
  virtual void on_loss(std::int64_t in_flight) = 0;

  // Called when the retransmission timer fires: collapse to 1 MSS.
  virtual void on_timeout() = 0;

  // Called when recovery completes (snd_una passed the recovery point).
  virtual void on_recovery_exit() = 0;

  [[nodiscard]] virtual std::int64_t cwnd_bytes() const = 0;
  [[nodiscard]] virtual std::int64_t ssthresh_bytes() const = 0;
  [[nodiscard]] virtual bool in_slow_start() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  // Returns to the initial-window state (used by slow-start-after-idle).
  virtual void reset_to_initial_window() = 0;
};

// Parameters shared by the window-based CCAs.
struct CcConfig {
  std::int64_t mss_bytes{1460};
  std::int64_t initial_window_segments{10};  // Linux IW10
  // DCTCP parameters.
  double dctcp_gain{1.0 / 16.0};  // g: paper Section 2 uses 1/16
  double dctcp_initial_alpha{1.0};
  // CUBIC parameters.
  double cubic_c{0.4};
  double cubic_beta{0.7};
  // Swift parameters (see tcp/cc/swift.h).
  sim::Time swift_target_delay{sim::Time::microseconds(60)};
  double swift_additive_increase_segments{1.0};
  double swift_beta{0.8};
  double swift_max_mdf{0.5};
  double swift_min_cwnd_segments{0.01};
  // DCQCN parameters (see tcp/cc/dcqcn.h): the SIGCOMM'15 defaults — a slow
  // gain (1/256 vs DCTCP's 1/16) on a 55 us alpha timer, decreases gated to
  // one per 50 us.
  double dcqcn_gain{1.0 / 256.0};
  double dcqcn_initial_alpha{1.0};
  sim::Time dcqcn_alpha_update_interval{sim::Time::microseconds(55)};
  sim::Time dcqcn_rate_decrease_interval{sim::Time::microseconds(50)};
  // HPCC parameters (see tcp/cc/hpcc.h). Requires TcpConfig.int_telemetry.
  double hpcc_eta{0.95};
  int hpcc_max_stage{5};
  std::int64_t hpcc_wai_bytes{80};
  sim::Time hpcc_base_rtt{sim::Time::microseconds(30)};
  double hpcc_min_cwnd_segments{0.01};
};

// Factory helpers (definitions live with each CCA).
[[nodiscard]] std::unique_ptr<CongestionControl> make_reno(const CcConfig& config,
                                                           bool ecn_enabled);
[[nodiscard]] std::unique_ptr<CongestionControl> make_dctcp(const CcConfig& config);
[[nodiscard]] std::unique_ptr<CongestionControl> make_cubic(const CcConfig& config);

// Named CCA selection for experiment configs.
enum class CcAlgorithm { kReno, kRenoEcn, kDctcp, kCubic, kSwift, kHpcc, kDcqcn };

[[nodiscard]] std::unique_ptr<CongestionControl> make_congestion_control(CcAlgorithm algo,
                                                                         const CcConfig& config);

[[nodiscard]] const char* to_string(CcAlgorithm algo) noexcept;

}  // namespace incast::tcp

#endif  // INCAST_TCP_CONGESTION_CONTROL_H_
