// TcpConnection: a sender/receiver endpoint pair with a shared flow id.
//
// Connections are persistent (the paper's workloads reuse connections across
// bursts, which is what makes the Section 4.3 divergence possible), so no
// SYN handshake is modelled: both endpoints exist from construction, exactly
// like a long-lived connection in steady state.
#ifndef INCAST_TCP_TCP_CONNECTION_H_
#define INCAST_TCP_TCP_CONNECTION_H_

#include <memory>

#include "tcp/tcp_receiver.h"
#include "tcp/tcp_sender.h"

namespace incast::tcp {

class TcpConnection {
 public:
  // Builds a connection carrying data sender_host -> receiver_host.
  TcpConnection(sim::Simulator& sim, net::Host& sender_host, net::Host& receiver_host,
                net::FlowId flow, const TcpConfig& config)
      : sender_{std::make_unique<TcpSender>(sim, sender_host, receiver_host.id(), flow,
                                            config)},
        receiver_{std::make_unique<TcpReceiver>(sim, receiver_host, sender_host.id(), flow,
                                                config)} {}

  [[nodiscard]] TcpSender& sender() noexcept { return *sender_; }
  [[nodiscard]] const TcpSender& sender() const noexcept { return *sender_; }
  [[nodiscard]] TcpReceiver& receiver() noexcept { return *receiver_; }
  [[nodiscard]] const TcpReceiver& receiver() const noexcept { return *receiver_; }
  [[nodiscard]] net::FlowId flow() const noexcept { return sender_->flow(); }

 private:
  std::unique_ptr<TcpSender> sender_;
  std::unique_ptr<TcpReceiver> receiver_;
};

}  // namespace incast::tcp

#endif  // INCAST_TCP_TCP_CONNECTION_H_
