// TcpConnection: a sender/receiver endpoint pair with a shared flow id.
//
// Connections are persistent (the paper's workloads reuse connections across
// bursts, which is what makes the Section 4.3 divergence possible), so no
// SYN handshake is modelled: both endpoints exist from construction, exactly
// like a long-lived connection in steady state.
//
// Both endpoints are held by value: a connection is one object, not three
// heap allocations, so an arena of connections (sim/stable_arena.h) keeps
// the per-flow state of a large incast contiguous. The price is that
// TcpConnection is address-pinned like its endpoints (they capture `this`
// in scheduled events) — construct it in place and never move it.
#ifndef INCAST_TCP_TCP_CONNECTION_H_
#define INCAST_TCP_TCP_CONNECTION_H_

#include "tcp/tcp_receiver.h"
#include "tcp/tcp_sender.h"

namespace incast::tcp {

class TcpConnection {
 public:
  // Builds a connection carrying data sender_host -> receiver_host.
  TcpConnection(sim::Simulator& sim, net::Host& sender_host, net::Host& receiver_host,
                net::FlowId flow, const TcpConfig& config)
      : sender_{sim, sender_host, receiver_host.id(), flow, config},
        receiver_{sim, receiver_host, sender_host.id(), flow, config} {}

  // Domain-decomposed variant: each endpoint schedules on its own host's
  // simulator, so a connection may straddle two parallel-engine domains
  // (the endpoints only ever talk through the network, never directly).
  TcpConnection(net::Host& sender_host, net::Host& receiver_host,
                net::FlowId flow, const TcpConfig& config)
      : sender_{sender_host.simulator(), sender_host, receiver_host.id(), flow, config},
        receiver_{receiver_host.simulator(), receiver_host, sender_host.id(), flow,
                  config} {}

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  [[nodiscard]] TcpSender& sender() noexcept { return sender_; }
  [[nodiscard]] const TcpSender& sender() const noexcept { return sender_; }
  [[nodiscard]] TcpReceiver& receiver() noexcept { return receiver_; }
  [[nodiscard]] const TcpReceiver& receiver() const noexcept { return receiver_; }
  [[nodiscard]] net::FlowId flow() const noexcept { return sender_.flow(); }

 private:
  TcpSender sender_;
  TcpReceiver receiver_;
};

}  // namespace incast::tcp

#endif  // INCAST_TCP_TCP_CONNECTION_H_
