#include "tcp/tcp_receiver.h"

#include <cassert>
#include <utility>

namespace incast::tcp {

TcpReceiver::TcpReceiver(sim::Simulator& sim, net::Host& local, net::NodeId remote,
                         net::FlowId flow, const TcpConfig& config)
    : sim_{sim}, local_{local}, remote_{remote}, flow_{flow}, config_{config} {
  local_.register_flow(flow_, this);
}

TcpReceiver::~TcpReceiver() {
  local_.unregister_flow(flow_);
  sim_.cancel(ack_timer_);
}

void TcpReceiver::handle_packet(net::Packet p) {
  if (p.trimmed) [[unlikely]] {
    // A trimming queue cut this segment's payload and forwarded just the
    // header. The header names exactly what was lost, so NACK it back and
    // the sender retransmits in one RTT — no dup-ACK threshold, no RTO
    // (NDP-style receiver-driven recovery). A CE mark on the trimmed
    // header still feeds the sender's ECN accounting via the echo bit.
    ++stats_.trimmed_headers_received;
    ++stats_.nacks_sent;
    local_.send(net::make_nack_packet(local_.id(), remote_, flow_, p.tcp.seq,
                                      p.ecn == net::Ecn::kCe));
    return;
  }
  if (!p.is_data()) return;  // the receiver side only consumes data

  ++stats_.data_packets_received;
  stats_.data_bytes_received += p.payload_bytes;
  if (p.int_stack.enabled && p.int_stack.num_hops > 0) {
    last_int_ = p.int_stack;
  }
  const bool ce = p.ecn == net::Ecn::kCe;
  if (ce) ++stats_.ce_packets_received;

  const std::int64_t seg_start = p.tcp.seq;
  const std::int64_t seg_end = seg_start + p.payload_bytes;

  if (seg_end <= rcv_nxt_) {
    // Entirely old (a spurious retransmission): re-ACK immediately so the
    // sender can make progress.
    send_ack(delayed_ack_ece(ce), /*duplicate=*/true);
    return;
  }

  if (seg_start > rcv_nxt_) {
    // A gap: buffer and emit an immediate duplicate ACK (RFC 5681 §3.2).
    ++stats_.out_of_order_packets;
    store_out_of_order(p);
    send_ack(delayed_ack_ece(ce), /*duplicate=*/true);
    return;
  }

  // RFC 8257 §3.2: when the CE state changes, immediately ACK everything
  // received *before* this segment with the old ECE value, so the sender's
  // per-byte marking accounting stays exact despite ACK coalescing. Must
  // happen before rcv_nxt advances past the new segment.
  if (config_.delayed_ack && ce != ce_state_) {
    if (pending_segments_ > 0) {
      send_ack(/*ece=*/ce_state_, /*duplicate=*/false);
    }
    ce_state_ = ce;
  }

  accept_in_order(p);
  on_segment_acceptable(ce);
}

void TcpReceiver::accept_in_order(const net::Packet& p) {
  const std::int64_t old_rcv_nxt = rcv_nxt_;
  rcv_nxt_ = p.tcp.seq + p.payload_bytes;
  merge_contiguous();
  if (on_data_) on_data_(rcv_nxt_ - old_rcv_nxt);
}

void TcpReceiver::store_out_of_order(const net::Packet& p) {
  std::int64_t start = p.tcp.seq;
  std::int64_t end = start + p.payload_bytes;
  // Merge with any overlapping or adjacent stored ranges.
  auto it = ooo_.lower_bound(start);
  if (it != ooo_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= start) {
      start = prev->first;
      end = std::max(end, prev->second);
      it = ooo_.erase(prev);
    }
  }
  while (it != ooo_.end() && it->first <= end) {
    end = std::max(end, it->second);
    it = ooo_.erase(it);
  }
  ooo_.emplace(start, end);
  note_recent_ooo(start);
}

void TcpReceiver::note_recent_ooo(std::int64_t start) {
  // Move `start` to the front of the recency list (RFC 2018: the block
  // containing the most recent segment is reported first).
  std::erase(recent_ooo_, start);
  recent_ooo_.push_front(start);
  while (recent_ooo_.size() > 2 * net::kMaxSackBlocks) recent_ooo_.pop_back();
}

void TcpReceiver::attach_sack_blocks(net::Packet& ack) const {
  if (!config_.sack_enabled || ooo_.empty()) return;
  for (const std::int64_t start : recent_ooo_) {
    if (ack.tcp.num_sack >= net::kMaxSackBlocks) break;
    const auto it = ooo_.find(start);
    if (it == ooo_.end()) continue;  // merged away since it was noted
    ack.tcp.sack[ack.tcp.num_sack++] = net::SackBlock{it->first, it->second};
  }
}

void TcpReceiver::merge_contiguous() {
  while (!ooo_.empty()) {
    const auto it = ooo_.begin();
    if (it->first > rcv_nxt_) break;
    rcv_nxt_ = std::max(rcv_nxt_, it->second);
    ooo_.erase(it);
  }
}

void TcpReceiver::on_segment_acceptable(bool ce) {
  if (!config_.delayed_ack) {
    send_ack(/*ece=*/ce, /*duplicate=*/false);
    return;
  }

  ++pending_segments_;
  if (pending_segments_ >= config_.ack_every_n_segments) {
    flush_delayed_ack();
  } else {
    schedule_delayed_ack();
  }
}

// ECE value to put on an immediate (non-delayed-path) ACK.
// With delayed ACKs off this is simply the segment's CE mark, handled at the
// call sites; with them on, ECE always reports the state machine's belief.
bool TcpReceiver::delayed_ack_ece(bool segment_ce) const noexcept {
  return config_.delayed_ack ? ce_state_ : segment_ce;
}

void TcpReceiver::send_ack(bool ece, bool duplicate) {
  net::Packet ack = net::make_ack_packet(local_.id(), remote_, flow_, rcv_nxt_, ece);
  attach_sack_blocks(ack);
  if (last_int_.enabled) ack.int_stack = last_int_;
  ++stats_.acks_sent;
  if (duplicate) ++stats_.dup_acks_sent;
  local_.send(std::move(ack));
  pending_segments_ = 0;
  sim_.cancel(ack_timer_);
  ack_timer_ = sim::kInvalidEventId;
}

void TcpReceiver::schedule_delayed_ack() {
  if (ack_timer_ != sim::kInvalidEventId) return;
  ack_timer_ = sim_.schedule_in_keyed(config_.delayed_ack_timeout, local_.next_event_key(), [this] {
    ack_timer_ = sim::kInvalidEventId;
    if (pending_segments_ > 0) flush_delayed_ack();
  }, sim::EventCategory::kTcp);
}

void TcpReceiver::flush_delayed_ack() { send_ack(/*ece=*/ce_state_, /*duplicate=*/false); }

}  // namespace incast::tcp
