// TcpConfig: everything tunable about a simulated TCP connection.
#ifndef INCAST_TCP_TCP_CONFIG_H_
#define INCAST_TCP_TCP_CONFIG_H_

#include <cstdint>
#include <optional>

#include "sim/time.h"
#include "tcp/congestion_control.h"
#include "tcp/rtt_estimator.h"

namespace incast::tcp {

struct TcpConfig {
  std::int64_t mss_bytes{1460};  // 1500 B MTU minus 40 B of headers
  CcAlgorithm cc{CcAlgorithm::kDctcp};
  CcConfig cc_config{};
  RttEstimator::Config rtt{};

  // Delayed ACKs. The paper disables them in its simulations because they
  // "exacerbate burstiness and mask the impact of DCTCP's congestion
  // control" (Section 4); ablation A5 turns them back on.
  bool delayed_ack{false};
  int ack_every_n_segments{2};
  sim::Time delayed_ack_timeout{sim::Time::microseconds(500)};

  // Number of duplicate ACKs that triggers fast retransmit (RFC 5681).
  int dupack_threshold{3};

  // Selective acknowledgments (RFC 2018 blocks from the receiver, an
  // RFC 6675-style scoreboard and hole retransmission at the sender).
  // On by default, as in Linux and ns-3.
  bool sack_enabled{true};

  // Limited transmit (RFC 3042): the first two duplicate ACKs may each
  // release one new segment beyond cwnd, keeping the ACK clock alive at
  // small windows.
  bool limited_transmit{true};

  // In-band network telemetry: data packets request INT stamping from
  // switches, and the receiver echoes the per-hop records on ACKs.
  // Required by INT-based CCAs (kHpcc); harmless otherwise.
  bool int_telemetry{false};

  // Tail loss probe (RFC 8985-lite): when ACKs stop arriving for ~2 SRTT
  // with data outstanding, retransmit the last segment to elicit SACK
  // feedback instead of waiting out the full RTO. Off by default — the
  // paper's ns-3/DCTCP setup recovers tail losses via RTO, which is what
  // makes Mode 3's ~200 ms completion times; ablation A8 measures how much
  // of Mode 3 survives on a TLP-enabled stack (as modern kernels are).
  bool tail_loss_probe{false};
  // PTO = max(pto_srtt_multiplier * SRTT, min_pto).
  double pto_srtt_multiplier{2.0};
  sim::Time min_pto{sim::Time::milliseconds(1)};

  // If true, an idle period longer than the RTO collapses cwnd back to the
  // initial window (RFC 5681 §4.1). Off by default: the paper's bursts
  // repeat faster than any realistic RTO, so production DCTCP carries cwnd
  // across bursts — the root of the Section 4.3 divergence.
  bool slow_start_after_idle{false};

  // Guardrail (Section 5.1 proposal): an upper bound on cwnd, e.g. set per
  // flow from the predicted incast degree. nullopt = vanilla TCP.
  std::optional<std::int64_t> cwnd_cap_bytes;
};

}  // namespace incast::tcp

#endif  // INCAST_TCP_TCP_CONFIG_H_
