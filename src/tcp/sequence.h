// SeqNum32: wrap-safe 32-bit TCP sequence-number arithmetic (RFC 9293).
//
// The simulator's protocol core uses 64-bit byte offsets (which cannot wrap
// at simulated scales), but real TCP headers carry 32-bit sequence numbers
// whose comparisons must be computed modulo 2^32. This class provides that
// arithmetic for the on-the-wire representation, with the standard
// "serial number" ordering: a < b iff (b - a) mod 2^32 is in (0, 2^31).
#ifndef INCAST_TCP_SEQUENCE_H_
#define INCAST_TCP_SEQUENCE_H_

#include <compare>
#include <cstdint>

namespace incast::tcp {

class SeqNum32 {
 public:
  constexpr SeqNum32() noexcept = default;
  explicit constexpr SeqNum32(std::uint32_t raw) noexcept : raw_{raw} {}

  [[nodiscard]] constexpr std::uint32_t raw() const noexcept { return raw_; }

  // Advances by `bytes`, wrapping modulo 2^32.
  [[nodiscard]] constexpr SeqNum32 operator+(std::uint32_t bytes) const noexcept {
    return SeqNum32{raw_ + bytes};
  }
  constexpr SeqNum32& operator+=(std::uint32_t bytes) noexcept {
    raw_ += bytes;
    return *this;
  }

  // Signed distance from `other` to *this (how far *this is ahead),
  // interpreting the gap as a two's-complement 32-bit value.
  [[nodiscard]] constexpr std::int32_t operator-(SeqNum32 other) const noexcept {
    return static_cast<std::int32_t>(raw_ - other.raw_);
  }

  friend constexpr bool operator==(SeqNum32 a, SeqNum32 b) noexcept {
    return a.raw_ == b.raw_;
  }
  friend constexpr bool operator<(SeqNum32 a, SeqNum32 b) noexcept { return (b - a) > 0; }
  friend constexpr bool operator>(SeqNum32 a, SeqNum32 b) noexcept { return b < a; }
  friend constexpr bool operator<=(SeqNum32 a, SeqNum32 b) noexcept { return !(b < a); }
  friend constexpr bool operator>=(SeqNum32 a, SeqNum32 b) noexcept { return !(a < b); }

  // True if *this lies in the half-open window [lo, lo + size).
  [[nodiscard]] constexpr bool in_window(SeqNum32 lo, std::uint32_t size) const noexcept {
    return static_cast<std::uint32_t>(raw_ - lo.raw_) < size;
  }

 private:
  std::uint32_t raw_{0};
};

// Converts a 64-bit stream offset to its 32-bit wire representation.
[[nodiscard]] constexpr SeqNum32 to_wire_seq(std::int64_t offset, std::uint32_t isn = 0) noexcept {
  return SeqNum32{static_cast<std::uint32_t>(offset) + isn};
}

// Recovers a 64-bit stream offset from a wire sequence number, given a
// reference offset known to be within 2^31 of the true value (e.g. the
// receiver's rcv_nxt). This is how a real implementation "unwraps" 32-bit
// sequence numbers into a linear stream position.
[[nodiscard]] constexpr std::int64_t from_wire_seq(SeqNum32 wire, std::int64_t reference,
                                                   std::uint32_t isn = 0) noexcept {
  const SeqNum32 ref_wire = to_wire_seq(reference, isn);
  const std::int32_t delta = wire - ref_wire;
  return reference + delta;
}

}  // namespace incast::tcp

#endif  // INCAST_TCP_SEQUENCE_H_
