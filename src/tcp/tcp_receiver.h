// TcpReceiver: the data-consuming endpoint of a simulated TCP connection.
//
// Performs in-order reassembly (cumulative ACKs plus duplicate ACKs on
// gaps), and generates the ECN-Echo feedback DCTCP depends on. With delayed
// ACKs disabled (the paper's configuration) every data segment is ACKed
// immediately with ECE mirroring that segment's CE mark; with delayed ACKs
// enabled the receiver runs the RFC 8257 §3.2 CE state machine, cutting the
// delay short whenever the CE state changes so the sender's marked-byte
// accounting stays exact.
#ifndef INCAST_TCP_TCP_RECEIVER_H_
#define INCAST_TCP_TCP_RECEIVER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "net/host.h"
#include "tcp/tcp_config.h"

namespace incast::tcp {

class TcpReceiver final : public net::PacketHandler {
 public:
  struct Stats {
    std::int64_t data_packets_received{0};
    std::int64_t data_bytes_received{0};
    std::int64_t ce_packets_received{0};
    std::int64_t acks_sent{0};
    std::int64_t dup_acks_sent{0};
    std::int64_t out_of_order_packets{0};
    // Trimmed headers received (CompositeQueue cut the payload in the
    // fabric); each one elicits an immediate NACK naming the lost segment.
    std::int64_t trimmed_headers_received{0};
    std::int64_t nacks_sent{0};
  };

  // Registers for `flow` on `local`; ACKs are addressed to `remote`.
  TcpReceiver(sim::Simulator& sim, net::Host& local, net::NodeId remote, net::FlowId flow,
              const TcpConfig& config);
  ~TcpReceiver() override;

  TcpReceiver(const TcpReceiver&) = delete;
  TcpReceiver& operator=(const TcpReceiver&) = delete;

  void handle_packet(net::Packet p) override;

  // Next expected in-order byte (== total in-order bytes delivered).
  [[nodiscard]] std::int64_t rcv_nxt() const noexcept { return rcv_nxt_; }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  // Invoked with the number of newly in-order bytes after each advance.
  void set_on_data(std::function<void(std::int64_t)> cb) { on_data_ = std::move(cb); }

 private:
  void accept_in_order(const net::Packet& p);
  void store_out_of_order(const net::Packet& p);
  void merge_contiguous();
  void note_recent_ooo(std::int64_t start);
  void attach_sack_blocks(net::Packet& ack) const;
  void on_segment_acceptable(bool ce);
  [[nodiscard]] bool delayed_ack_ece(bool segment_ce) const noexcept;
  void send_ack(bool ece, bool duplicate);
  void schedule_delayed_ack();
  void flush_delayed_ack();

  sim::Simulator& sim_;
  net::Host& local_;
  net::NodeId remote_;
  net::FlowId flow_;
  TcpConfig config_;

  std::int64_t rcv_nxt_{0};
  // Out-of-order byte ranges [start, end), disjoint and non-adjacent.
  std::map<std::int64_t, std::int64_t> ooo_;
  // Starts of recently updated out-of-order ranges, most recent first —
  // RFC 2018's rule for ordering SACK blocks.
  std::deque<std::int64_t> recent_ooo_;

  // Delayed-ACK state.
  int pending_segments_{0};
  sim::EventId ack_timer_{sim::kInvalidEventId};
  // DCTCP.CE: the CE state machine's current belief (RFC 8257 §3.2).
  bool ce_state_{false};

  // Latest INT stack seen on a data packet; echoed on outgoing ACKs so the
  // sender's INT-based CCA observes the path state (HPCC-style).
  net::IntStack last_int_{};

  std::function<void(std::int64_t)> on_data_;
  Stats stats_;
};

}  // namespace incast::tcp

#endif  // INCAST_TCP_TCP_RECEIVER_H_
