// Cdf: an empirical cumulative distribution over double samples.
//
// Every distribution figure in the paper (Figures 2, 3, 4) is a CDF of
// per-burst statistics; this class accumulates samples and answers
// percentile queries with linear interpolation between order statistics.
#ifndef INCAST_ANALYSIS_CDF_H_
#define INCAST_ANALYSIS_CDF_H_

#include <cstddef>
#include <vector>

namespace incast::analysis {

class Cdf {
 public:
  Cdf() = default;

  void add(double value) {
    samples_.push_back(value);
    sorted_ = false;
  }

  void add_all(const std::vector<double>& values) {
    samples_.insert(samples_.end(), values.begin(), values.end());
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  // p in [0, 100]. Interpolates between order statistics; p=0 is the min,
  // p=100 the max. Returns 0 for an empty distribution.
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] double min() const { return percentile(0); }
  [[nodiscard]] double median() const { return percentile(50); }
  [[nodiscard]] double max() const { return percentile(100); }
  [[nodiscard]] double mean() const;

  // Fraction of samples <= value, in [0, 1].
  [[nodiscard]] double fraction_below(double value) const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_{true};
};

}  // namespace incast::analysis

#endif  // INCAST_ANALYSIS_CDF_H_
