// StabilityAnalysis: flow-count stability over time and across hosts.
//
// Section 3.3 / Figure 3: for each service, the distribution of per-burst
// flow counts barely moves across 18 hours of snapshots and across the
// sampled hosts. These helpers aggregate per-burst flow counts grouped by
// snapshot (time) or by host and report the per-group mean and p99, plus a
// summary of how much the groups disagree (the paper's notion of
// "stability", quantified).
#ifndef INCAST_ANALYSIS_STABILITY_H_
#define INCAST_ANALYSIS_STABILITY_H_

#include <cstddef>
#include <vector>

#include "analysis/cdf.h"

namespace incast::analysis {

// One group of per-burst flow-count samples (one snapshot, or one host).
struct FlowCountGroup {
  // Label index: snapshot number or host number.
  std::size_t index{0};
  Cdf flow_counts;
};

struct GroupSummary {
  std::size_t index{0};
  double mean{0.0};
  double p99{0.0};
  std::size_t bursts{0};
};

struct StabilityReport {
  std::vector<GroupSummary> groups;
  // Dispersion of per-group means: (max - min) / grand mean. Small values
  // mean the operating point is stable across groups.
  double mean_relative_spread{0.0};
  double p99_relative_spread{0.0};
  double grand_mean{0.0};
};

// Summarizes each group and computes cross-group dispersion.
[[nodiscard]] StabilityReport analyze_stability(const std::vector<FlowCountGroup>& groups);

// Coefficient of variation (stddev / mean) of a series; the time-stability
// metric we report for Figure 3a.
[[nodiscard]] double coefficient_of_variation(const std::vector<double>& values);

}  // namespace incast::analysis

#endif  // INCAST_ANALYSIS_STABILITY_H_
