// BurstDetector: finds bursts in a Millisampler trace.
//
// The paper's definition (Section 3.1): a burst is "any contiguous time
// span where the average aggregate ingress data rate, measured at the
// receiver at 1 ms intervals, is greater than 50% of the NIC line rate."
// An incast is a burst whose active flow count exceeds 25 (Section 3.3).
#ifndef INCAST_ANALYSIS_BURST_DETECTOR_H_
#define INCAST_ANALYSIS_BURST_DETECTOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "telemetry/millisampler.h"

namespace incast::analysis {

struct Burst {
  std::size_t first_bin{0};  // index of the first bin of the burst
  std::size_t num_bins{0};   // contiguous bins above threshold

  std::int64_t bytes{0};
  std::int64_t marked_bytes{0};
  std::int64_t retx_bytes{0};
  // Peak per-bin active flow count during the burst (each bin's count is
  // itself measured over 1 ms, as in the paper).
  int max_active_flows{0};
  // Peak queue occupancy during the burst, joined from per-bin watermarks;
  // -1 when no watermark data was supplied.
  std::int64_t peak_queue_packets{-1};

  [[nodiscard]] double marked_fraction() const noexcept {
    return bytes > 0 ? static_cast<double>(marked_bytes) / static_cast<double>(bytes) : 0.0;
  }
  [[nodiscard]] double retx_fraction() const noexcept {
    return bytes > 0 ? static_cast<double>(retx_bytes) / static_cast<double>(bytes) : 0.0;
  }
};

struct BurstDetectorConfig {
  // A bin belongs to a burst when utilization > threshold (fraction of
  // line rate).
  double utilization_threshold{0.5};
  // Flow count above which a burst counts as an incast.
  int incast_flow_threshold{25};
};

class BurstDetector {
 public:
  explicit BurstDetector(const BurstDetectorConfig& config = {}) noexcept
      : config_{config} {}

  // Detects bursts in `sampler`'s finished trace. `queue_watermarks`, if
  // non-empty, supplies per-bin peak queue depth (same bin duration and
  // origin as the sampler's bins) for Burst::peak_queue_packets.
  [[nodiscard]] std::vector<Burst> detect(
      const telemetry::Millisampler& sampler,
      std::span<const std::int64_t> queue_watermarks = {}) const;

  // Same, over raw bins (e.g. loaded from a CSV trace): `bytes_per_bin_at_
  // line_rate` = line_rate * bin_duration in bytes.
  [[nodiscard]] std::vector<Burst> detect(
      std::span<const telemetry::Millisampler::Bin> bins,
      std::int64_t bytes_per_bin_at_line_rate,
      std::span<const std::int64_t> queue_watermarks = {}) const;

  [[nodiscard]] bool is_incast(const Burst& b) const noexcept {
    return b.max_active_flows > config_.incast_flow_threshold;
  }

  [[nodiscard]] const BurstDetectorConfig& config() const noexcept { return config_; }

 private:
  BurstDetectorConfig config_;
};

// Summary of a full trace, used by the fleet experiments.
struct TraceBurstSummary {
  double trace_seconds{0.0};
  std::vector<Burst> bursts;

  [[nodiscard]] double bursts_per_second() const noexcept {
    return trace_seconds > 0.0 ? static_cast<double>(bursts.size()) / trace_seconds : 0.0;
  }
};

}  // namespace incast::analysis

#endif  // INCAST_ANALYSIS_BURST_DETECTOR_H_
