#include "analysis/cdf.h"

#include <algorithm>
#include <cmath>

namespace incast::analysis {

void Cdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  if (p <= 0.0) return samples_.front();
  if (p >= 100.0) return samples_.back();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - std::floor(rank);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Cdf::mean() const {
  if (samples_.empty()) return 0.0;
  double total = 0.0;
  for (const double v : samples_) total += v;
  return total / static_cast<double>(samples_.size());
}

double Cdf::fraction_below(double value) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), value);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

}  // namespace incast::analysis
