// TimeSeries: a (time, value) sequence with the reductions the experiment
// reports need — summary statistics, fixed-bin resampling (how Figures 5/6
// downsample queue traces for printing), EWMA smoothing, and peak finding.
#ifndef INCAST_ANALYSIS_TIMESERIES_H_
#define INCAST_ANALYSIS_TIMESERIES_H_

#include <cstddef>
#include <vector>

#include "sim/time.h"

namespace incast::analysis {

class TimeSeries {
 public:
  struct Point {
    sim::Time at{};
    double value{0.0};
  };

  TimeSeries() = default;

  // Points must be appended in non-decreasing time order.
  void add(sim::Time at, double value);

  [[nodiscard]] const std::vector<Point>& points() const noexcept { return points_; }
  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  // Arithmetic mean of the samples (unweighted).
  [[nodiscard]] double mean() const;
  // Time-weighted mean: each sample holds until the next one; the last
  // sample gets zero weight (needs >= 2 points, else falls back to mean()).
  [[nodiscard]] double time_weighted_mean() const;

  // The time of the largest value (first occurrence).
  [[nodiscard]] sim::Time argmax() const;

  // Resamples into fixed bins of `width` starting at `origin`; each bin
  // holds the chosen reduction of the samples falling in it (bins with no
  // samples repeat the previous bin's value, 0.0 initially).
  enum class Reduce { kMean, kMax, kLast };
  [[nodiscard]] std::vector<double> resample(sim::Time origin, sim::Time width,
                                             std::size_t bins,
                                             Reduce reduce = Reduce::kMean) const;

  // Exponentially weighted moving average with weight w in (0, 1]:
  // s_i = (1-w) * s_{i-1} + w * x_i (s_0 = x_0). Returns a new series on
  // the same timestamps.
  [[nodiscard]] TimeSeries ewma(double weight) const;

 private:
  std::vector<Point> points_;
};

}  // namespace incast::analysis

#endif  // INCAST_ANALYSIS_TIMESERIES_H_
