#include "analysis/burst_detector.h"

#include <algorithm>

namespace incast::analysis {

std::vector<Burst> BurstDetector::detect(
    const telemetry::Millisampler& sampler,
    std::span<const std::int64_t> queue_watermarks) const {
  return detect(sampler.bins(),
                sampler.config().line_rate.bytes_in(sampler.config().bin_duration),
                queue_watermarks);
}

std::vector<Burst> BurstDetector::detect(
    std::span<const telemetry::Millisampler::Bin> bins,
    std::int64_t bytes_per_bin_at_line_rate,
    std::span<const std::int64_t> queue_watermarks) const {
  std::vector<Burst> bursts;

  const bool have_queue = !queue_watermarks.empty();
  Burst current;
  bool in_burst = false;

  for (std::size_t i = 0; i < bins.size(); ++i) {
    const bool hot = static_cast<double>(bins[i].bytes) /
                         static_cast<double>(bytes_per_bin_at_line_rate) >
                     config_.utilization_threshold;
    if (hot) {
      if (!in_burst) {
        in_burst = true;
        current = Burst{};
        current.first_bin = i;
        if (have_queue) current.peak_queue_packets = 0;
      }
      const auto& b = bins[i];
      ++current.num_bins;
      current.bytes += b.bytes;
      current.marked_bytes += b.marked_bytes;
      current.retx_bytes += b.retx_bytes;
      current.max_active_flows = std::max(current.max_active_flows, b.active_flows);
      if (have_queue && i < queue_watermarks.size()) {
        current.peak_queue_packets = std::max(current.peak_queue_packets, queue_watermarks[i]);
      }
    } else if (in_burst) {
      bursts.push_back(current);
      in_burst = false;
    }
  }
  if (in_burst) bursts.push_back(current);
  return bursts;
}

}  // namespace incast::analysis
