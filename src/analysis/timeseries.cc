#include "analysis/timeseries.h"

#include <algorithm>
#include <cassert>

namespace incast::analysis {

void TimeSeries::add(sim::Time at, double value) {
  assert(points_.empty() || at >= points_.back().at);
  points_.push_back(Point{at, value});
}

double TimeSeries::min() const {
  double out = points_.empty() ? 0.0 : points_.front().value;
  for (const Point& p : points_) out = std::min(out, p.value);
  return out;
}

double TimeSeries::max() const {
  double out = points_.empty() ? 0.0 : points_.front().value;
  for (const Point& p : points_) out = std::max(out, p.value);
  return out;
}

double TimeSeries::mean() const {
  if (points_.empty()) return 0.0;
  double total = 0.0;
  for (const Point& p : points_) total += p.value;
  return total / static_cast<double>(points_.size());
}

double TimeSeries::time_weighted_mean() const {
  if (points_.size() < 2) return mean();
  double area = 0.0;
  for (std::size_t i = 0; i + 1 < points_.size(); ++i) {
    area += points_[i].value * (points_[i + 1].at - points_[i].at).sec();
  }
  const double span = (points_.back().at - points_.front().at).sec();
  return span > 0.0 ? area / span : mean();
}

sim::Time TimeSeries::argmax() const {
  sim::Time best_at{};
  double best = points_.empty() ? 0.0 : points_.front().value;
  if (!points_.empty()) best_at = points_.front().at;
  for (const Point& p : points_) {
    if (p.value > best) {
      best = p.value;
      best_at = p.at;
    }
  }
  return best_at;
}

std::vector<double> TimeSeries::resample(sim::Time origin, sim::Time width,
                                         std::size_t bins, Reduce reduce) const {
  std::vector<double> out(bins, 0.0);
  std::vector<int> counts(bins, 0);
  for (const Point& p : points_) {
    if (p.at < origin) continue;
    const auto idx = static_cast<std::size_t>((p.at - origin).ns() / width.ns());
    if (idx >= bins) break;
    switch (reduce) {
      case Reduce::kMean:
        out[idx] += p.value;
        ++counts[idx];
        break;
      case Reduce::kMax:
        out[idx] = counts[idx] == 0 ? p.value : std::max(out[idx], p.value);
        ++counts[idx];
        break;
      case Reduce::kLast:
        out[idx] = p.value;
        ++counts[idx];
        break;
    }
  }
  double carry = 0.0;
  for (std::size_t i = 0; i < bins; ++i) {
    if (counts[i] == 0) {
      out[i] = carry;  // empty bin: hold the previous value
    } else if (reduce == Reduce::kMean) {
      out[i] /= counts[i];
    }
    carry = out[i];
  }
  return out;
}

TimeSeries TimeSeries::ewma(double weight) const {
  assert(weight > 0.0 && weight <= 1.0);
  TimeSeries out;
  double state = 0.0;
  bool first = true;
  for (const Point& p : points_) {
    state = first ? p.value : (1.0 - weight) * state + weight * p.value;
    first = false;
    out.add(p.at, state);
  }
  return out;
}

}  // namespace incast::analysis
