#include "analysis/stability.h"

#include <algorithm>
#include <cmath>

namespace incast::analysis {

StabilityReport analyze_stability(const std::vector<FlowCountGroup>& groups) {
  StabilityReport report;
  if (groups.empty()) return report;

  std::vector<double> means;
  std::vector<double> p99s;
  double grand_total = 0.0;
  std::size_t grand_count = 0;

  for (const FlowCountGroup& g : groups) {
    GroupSummary s;
    s.index = g.index;
    s.bursts = g.flow_counts.count();
    s.mean = g.flow_counts.mean();
    s.p99 = g.flow_counts.percentile(99);
    report.groups.push_back(s);
    if (s.bursts > 0) {
      means.push_back(s.mean);
      p99s.push_back(s.p99);
      grand_total += s.mean * static_cast<double>(s.bursts);
      grand_count += s.bursts;
    }
  }
  if (means.empty() || grand_count == 0) return report;

  report.grand_mean = grand_total / static_cast<double>(grand_count);

  const auto spread = [](const std::vector<double>& v, double denom) {
    if (v.empty() || denom <= 0.0) return 0.0;
    const auto [lo, hi] = std::minmax_element(v.begin(), v.end());
    return (*hi - *lo) / denom;
  };
  report.mean_relative_spread = spread(means, report.grand_mean);

  double p99_mean = 0.0;
  for (const double v : p99s) p99_mean += v;
  p99_mean /= static_cast<double>(p99s.size());
  report.p99_relative_spread = spread(p99s, p99_mean);

  return report;
}

double coefficient_of_variation(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = 0.0;
  for (const double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  if (mean == 0.0) return 0.0;
  double var = 0.0;
  for (const double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size() - 1);
  return std::sqrt(var) / mean;
}

}  // namespace incast::analysis
